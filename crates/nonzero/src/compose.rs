//! Order-independent composition of the Lemma 2.1 two-stage filter across
//! partial indexes.
//!
//! Lemma 2.1 says `P_i ∈ NN≠0(q)` iff `δ_i(q) < Δ_j(q)` for every `j ≠ i`,
//! which reduces to comparing `δ_i(q)` against the global minimum
//! `Δ(q) = min_j Δ_j(q)` — except for the minimizer itself, which must be
//! compared against the *second* minimum. Both statistics are associative
//! and commutative folds over `(Δ_j, id_j)` pairs, so a set split into
//! arbitrary blocks (the Bentley–Saxe decomposition of `unn-dynamic`)
//! composes exactly: fold every block's pairs into one [`DeltaCompose`] and
//! the stage-2 test is bit-identical to a single flat index, regardless of
//! block layout or fold order.
//!
//! Ties are handled by folding in the lexicographic `(Δ, id)` order: when
//! several points share the minimal `Δ`, the second-minimum equals the
//! minimum and every tied point is capped by it — the same answer a flat
//! Lemma 2.1 scan produces.

/// Running `(minimum, second-minimum)` of `(Δ_j(q), id)` pairs under the
/// lexicographic `(value, id)` order — the stage-1 state of a composed
/// Lemma 2.1 query.
///
/// ```
/// use unn_nonzero::DeltaCompose;
///
/// let mut f = DeltaCompose::new();
/// for (delta, id) in [(3.0, 7), (1.0, 2), (2.0, 9)] {
///     f.observe(delta, id);
/// }
/// assert_eq!(f.delta_min(), 1.0);
/// assert_eq!(f.cap_for(2), 2.0); // the minimizer is capped by the runner-up
/// assert_eq!(f.cap_for(9), 1.0); // everyone else by the minimum
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeltaCompose {
    /// Smallest `(Δ, id)` observed, lexicographically.
    best: Option<(f64, u64)>,
    /// Second-smallest `Δ` (with multiplicity: ties at the minimum land
    /// here too).
    second: Option<f64>,
}

impl DeltaCompose {
    /// An empty fold (no points observed).
    pub fn new() -> Self {
        DeltaCompose {
            best: None,
            second: None,
        }
    }

    /// `true` when no pair has been observed.
    pub fn is_empty(&self) -> bool {
        self.best.is_none()
    }

    /// Folds one `(Δ_j(q), id)` pair in. Commutative and associative: any
    /// observation order over any block partition yields the same state.
    pub fn observe(&mut self, delta: f64, id: u64) {
        match self.best {
            None => self.best = Some((delta, id)),
            Some((b, bid)) => {
                if delta < b || (delta == b && id < bid) {
                    self.second = Some(self.second.map_or(b, |s| s.min(b)));
                    self.best = Some((delta, id));
                } else {
                    self.second = Some(self.second.map_or(delta, |s| s.min(delta)));
                }
            }
        }
    }

    /// Merges another fold in (block-level composition).
    pub fn merge(&mut self, other: &DeltaCompose) {
        if let Some((d, id)) = other.best {
            self.observe(d, id);
        }
        if let Some(s) = other.second {
            // `other.second` never carries `other.best`'s id, so folding it
            // as an id-less candidate only needs the value path.
            match self.best {
                None => self.best = Some((s, u64::MAX)),
                Some((b, _)) if s < b => {
                    self.second = Some(self.second.map_or(b, |x| x.min(b)));
                    self.best = Some((s, u64::MAX));
                }
                Some(_) => self.second = Some(self.second.map_or(s, |x| x.min(s))),
            }
        }
    }

    /// The global `Δ(q) = min_j Δ_j(q)` ([`f64::INFINITY`] when empty).
    pub fn delta_min(&self) -> f64 {
        self.best.map_or(f64::INFINITY, |(d, _)| d)
    }

    /// The id attaining [`DeltaCompose::delta_min`] (smallest id on ties).
    pub fn argmin(&self) -> Option<u64> {
        self.best.map(|(_, id)| id)
    }

    /// The largest Δ that could still change any [`DeltaCompose::cap_for`]
    /// output: the running second minimum (`+∞` until two pairs are
    /// observed).
    ///
    /// Folding a pair with `delta >= prune_bound()` leaves every
    /// `cap_for(id)` unchanged — it can neither become the new minimum nor
    /// lower the second minimum (ties at the second minimum fold to the
    /// same value, and a tie at the *minimum* implies `second == min`, so
    /// such a pair is never skipped while it could still matter). This makes
    /// `prune_bound` the exact shrinking cap for a branch-and-bound stage-1
    /// fold: skip any point or subtree whose Δ lower bound reaches it and
    /// the resulting caps — hence the whole `NN≠0` answer — are
    /// bit-identical to the full scan. It also bounds the loosest stage-2
    /// cap any id receives, so it doubles as the stage-2 report threshold.
    pub fn prune_bound(&self) -> f64 {
        match (self.best, self.second) {
            (None, _) => f64::INFINITY,
            (Some(_), None) => f64::INFINITY,
            (Some(_), Some(s)) => s,
        }
    }

    /// The Lemma 2.1 stage-2 cap for point `id`:
    /// `min_{j ≠ id} Δ_j(q)` — the second minimum if `id` is the
    /// minimizer, the minimum otherwise ([`f64::INFINITY`] when `id` is the
    /// only point). Membership is then `δ_id(q) < cap_for(id)`.
    pub fn cap_for(&self, id: u64) -> f64 {
        match self.best {
            None => f64::INFINITY,
            Some((d, bid)) => {
                if id == bid {
                    self.second.unwrap_or(f64::INFINITY)
                } else {
                    d
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force `min_{j != i} delta_j` for every observed id.
    fn brute_caps(pairs: &[(f64, u64)]) -> Vec<(u64, f64)> {
        pairs
            .iter()
            .map(|&(_, id)| {
                let cap = pairs
                    .iter()
                    .filter(|&&(_, j)| j != id)
                    .map(|&(d, _)| d)
                    .fold(f64::INFINITY, f64::min);
                (id, cap)
            })
            .collect()
    }

    #[test]
    fn single_point_is_uncapped() {
        let mut f = DeltaCompose::new();
        assert!(f.is_empty());
        f.observe(4.0, 11);
        assert_eq!(f.cap_for(11), f64::INFINITY);
        assert_eq!(f.cap_for(12), 4.0);
        assert_eq!(f.argmin(), Some(11));
    }

    #[test]
    fn ties_cap_each_other() {
        let mut f = DeltaCompose::new();
        f.observe(2.0, 5);
        f.observe(2.0, 3);
        assert_eq!(f.argmin(), Some(3));
        assert_eq!(f.cap_for(3), 2.0);
        assert_eq!(f.cap_for(5), 2.0);
    }

    proptest! {
        #[test]
        fn prop_fold_matches_brute_force_any_order(
            deltas in proptest::collection::vec(0.0f64..100.0, 1..24),
            rot in 0usize..24,
        ) {
            // Distinct ids 0..n; fold in rotated order vs brute force.
            let pairs: Vec<(f64, u64)> = deltas
                .iter()
                .enumerate()
                .map(|(i, &d)| (d, i as u64))
                .collect();
            let mut f = DeltaCompose::new();
            let k = rot % pairs.len();
            for &(d, id) in pairs[k..].iter().chain(&pairs[..k]) {
                f.observe(d, id);
            }
            for (id, want) in brute_caps(&pairs) {
                prop_assert_eq!(f.cap_for(id), want, "id {}", id);
            }
        }

        #[test]
        fn prop_skipping_at_prune_bound_preserves_caps(
            deltas in proptest::collection::vec(0.0f64..100.0, 1..32),
        ) {
            // Fold every pair vs. fold only pairs strictly below the
            // running prune_bound: every cap must come out bit-identical
            // (ties at the minimum and at the second minimum included —
            // 0..100 at 32 draws collides often enough under proptest's
            // duplicate-biased float strategy to exercise them).
            let pairs: Vec<(f64, u64)> = deltas
                .iter()
                .enumerate()
                .map(|(i, &d)| (d, i as u64))
                .collect();
            let mut full = DeltaCompose::new();
            let mut pruned = DeltaCompose::new();
            for &(d, id) in &pairs {
                full.observe(d, id);
                if d < pruned.prune_bound() {
                    pruned.observe(d, id);
                }
            }
            prop_assert_eq!(full.prune_bound(), pruned.prune_bound());
            for &(_, id) in &pairs {
                prop_assert_eq!(full.cap_for(id), pruned.cap_for(id), "id {}", id);
            }
            prop_assert_eq!(full.cap_for(u64::MAX - 1), pruned.cap_for(u64::MAX - 1));
        }

        #[test]
        fn prop_merge_equals_flat_fold(
            deltas in proptest::collection::vec(0.0f64..50.0, 2..20),
            split in 1usize..19,
        ) {
            let pairs: Vec<(f64, u64)> = deltas
                .iter()
                .enumerate()
                .map(|(i, &d)| (d, i as u64))
                .collect();
            let split = split.min(pairs.len() - 1);
            let mut flat = DeltaCompose::new();
            for &(d, id) in &pairs {
                flat.observe(d, id);
            }
            let (mut a, mut b) = (DeltaCompose::new(), DeltaCompose::new());
            for &(d, id) in &pairs[..split] {
                a.observe(d, id);
            }
            for &(d, id) in &pairs[split..] {
                b.observe(d, id);
            }
            a.merge(&b);
            for id in 0..pairs.len() as u64 {
                prop_assert_eq!(a.cap_for(id), flat.cap_for(id), "id {}", id);
            }
        }
    }
}
