//! Typed errors for the `NN≠0` index constructors.

use unn_geom::Point;

/// Why a nonzero-NN index could not be built.
#[derive(Clone, Debug, PartialEq)]
pub enum NonzeroError {
    /// A support disk has a non-finite center or radius.
    NonFiniteDisk {
        /// Index of the offending disk in the input slice.
        index: usize,
    },
    /// A support disk has a negative radius (zero is allowed: it models a
    /// zero-extent, i.e. certain, point).
    NegativeRadius {
        /// Index of the offending disk in the input slice.
        index: usize,
        /// The offending radius.
        radius: f64,
    },
    /// A discrete support set is empty.
    EmptySupport {
        /// Index of the offending object in the input slice.
        index: usize,
    },
    /// A discrete support contains a non-finite location.
    NonFiniteLocation {
        /// Index of the offending object in the input slice.
        index: usize,
        /// The offending location.
        point: Point,
    },
}

impl core::fmt::Display for NonzeroError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NonzeroError::NonFiniteDisk { index } => {
                write!(f, "disk {index} has a non-finite center or radius")
            }
            NonzeroError::NegativeRadius { index, radius } => {
                write!(f, "disk {index} has negative radius {radius}")
            }
            NonzeroError::EmptySupport { index } => {
                write!(f, "object {index} has an empty support set")
            }
            NonzeroError::NonFiniteLocation { index, point } => {
                write!(
                    f,
                    "object {index} has a non-finite location ({}, {})",
                    point.x, point.y
                )
            }
        }
    }
}

impl std::error::Error for NonzeroError {}
