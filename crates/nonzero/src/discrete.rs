//! The nonzero Voronoi diagram for discrete distributions (paper §2.2).
//!
//! With `P_i = {p_i1, …, p_ik}`, the paper linearizes distances through
//! `f(x, p) = d²(x,p) − ‖x‖² = ‖p‖² − 2⟨x,p⟩` (Eq. 5, Lemma 2.12):
//! `φ_i = min_a f(x, p_ia)` is concave piecewise-linear and
//! `Φ_j = max_b f(x, p_jb)` convex piecewise-linear, so each *forbidden
//! region*
//!
//! ```text
//!     K_ij = { x : δ_i(x) >= Δ_j(x) } = { x : Φ_j(x) - φ_i(x) <= 0 }
//! ```
//!
//! is the intersection of `k²` half-planes — a convex polygon whose boundary
//! Lemma 2.13 bounds by `O(k)` vertices. `P_i ∈ NN≠0(q)` iff `q` avoids
//! every `K_ij`.
//!
//! Vertices of `𝒱≠0` (Theorem 2.14) lie on boundaries of these polygons:
//! crossings `∂K_iu ∩ ∂K_ju` (`δ_i = δ_j = Δ_u`), crossings
//! `∂K_ij ∩ ∂K_ik` and polygon corners (breakpoints of `γ_i`); all are
//! enumerated exactly by segment intersection plus validation against
//! `Δ(x) = min_u Δ_u(x)`.

use unn_geom::hull::{farthest_dist, nearest_dist};
use unn_geom::polygon::ConvexPolygon;
use unn_geom::segment::{Line, SegIntersection};
use unn_geom::{Aabb, Point};

/// The forbidden region `K_ij = { x : δ_i(x) >= Δ_j(x) }` for discrete
/// supports `p_i` (of `P_i`) and `p_j` (of `P_j`), clipped to `universe`.
///
/// The half-plane for locations `a ∈ P_j`, `b ∈ P_i` is
/// `⟨x, 2(p_b - p_a)⟩ <= ‖p_b‖² - ‖p_a‖²` (i.e. `f(x, p_a) <= f(x, p_b)`).
pub fn forbidden_region(p_i: &[Point], p_j: &[Point], universe: &Aabb) -> ConvexPolygon {
    let mut lines = Vec::with_capacity(p_i.len() * p_j.len());
    for a in p_j {
        for b in p_i {
            // f(x, a) - f(x, b) <= 0  <=>  n·x - c <= 0 with:
            let n = 2.0 * (*b - *a);
            let c = b.to_vector().norm2() - a.to_vector().norm2();
            lines.push(Line { n, c });
        }
    }
    ConvexPolygon::halfplane_intersection(&lines, universe)
}

/// A vertex of the discrete-case `𝒱≠0` with the realizing index triple.
#[derive(Clone, Copy, Debug)]
pub struct DiscreteVertex {
    /// Location.
    pub point: Point,
    /// `(i, j, u)` — for crossings `δ_i = δ_j = Δ_u`; for breakpoints
    /// `δ_i = Δ_j = Δ_u` (then `j < u`); for polygon corners `j == u`.
    pub triple: (u32, u32, u32),
}

/// Exactly enumerates the vertices of `𝒱≠0(𝒫)` for discrete supports
/// (Theorem 2.14: `O(kn³)` in the worst case).
///
/// `universe` bounds the region of interest (vertices outside are ignored,
/// matching the subdivision builder); `tol_rel` scales the envelope
/// validation tolerance.
#[allow(clippy::needless_range_loop)] // triple loops index the region matrix
pub fn discrete_nonzero_vertices(
    objects: &[Vec<Point>],
    universe: &Aabb,
    tol_rel: f64,
) -> Vec<DiscreteVertex> {
    let n = objects.len();
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    let scale = objects
        .iter()
        .flat_map(|o| o.iter())
        .map(|p| p.to_vector().norm())
        .fold(1.0f64, f64::max);
    let tol = tol_rel * scale;

    // Envelope value Delta(x) = min_u Delta_u(x), brute force (enumeration
    // dominates the validation cost anyway).
    let cap = |x: Point, u: usize| farthest_dist(&objects[u], x);
    let cap_min = |x: Point| -> f64 { (0..n).map(|u| cap(x, u)).fold(f64::INFINITY, f64::min) };
    let delta = |x: Point, i: usize| nearest_dist(&objects[i], x);

    // All K_ij polygons (i != j).
    let mut regions: Vec<Vec<ConvexPolygon>> = vec![Vec::new(); n];
    for i in 0..n {
        regions[i] = (0..n)
            .map(|j| {
                if i == j {
                    ConvexPolygon::empty()
                } else {
                    forbidden_region(&objects[i], &objects[j], universe)
                }
            })
            .collect();
    }

    // Candidates on the universe boundary are clipping artifacts (the
    // polygons are clipped to the universe), not diagram vertices.
    let interior = universe.inflate(-tol.max(1e-9 * scale));
    let mut push = |x: Point, i: usize, j: usize, u: usize, conds: &[(f64, f64)]| {
        if !interior.contains(x) {
            return;
        }
        let m = cap_min(x);
        for &(lhs, rhs) in conds {
            if (lhs - rhs).abs() > tol {
                return;
            }
        }
        // On the envelope: the realized cap must equal the global min.
        let realized = conds[0].1;
        if (realized - m).abs() > tol {
            return;
        }
        out.push(DiscreteVertex {
            point: x,
            triple: (i as u32, j as u32, u as u32),
        });
    };

    // (a) Crossings of gamma_i and gamma_j on the envelope piece of u:
    // boundary(K_iu) x boundary(K_ju).
    for u in 0..n {
        for i in 0..n {
            if i == u || regions[i][u].is_degenerate() {
                continue;
            }
            for j in (i + 1)..n {
                if j == u || regions[j][u].is_degenerate() {
                    continue;
                }
                let (a, b) = (&regions[i][u], &regions[j][u]);
                if !a.bbox().intersects(&b.bbox()) {
                    continue;
                }
                for ea in a.edges() {
                    for eb in b.edges() {
                        if let SegIntersection::Point(x) = ea.intersect(&eb) {
                            push(
                                x,
                                i,
                                j,
                                u,
                                &[(delta(x, i), cap(x, u)), (delta(x, j), cap(x, u))],
                            );
                        }
                    }
                }
            }
        }
    }

    // (b) Breakpoints of gamma_i: crossings boundary(K_ij) x boundary(K_iu)
    // (delta_i = Delta_j = Delta_u) ...
    for i in 0..n {
        for j in 0..n {
            if j == i || regions[i][j].is_degenerate() {
                continue;
            }
            for u in (j + 1)..n {
                if u == i || regions[i][u].is_degenerate() {
                    continue;
                }
                let (a, b) = (&regions[i][j], &regions[i][u]);
                if !a.bbox().intersects(&b.bbox()) {
                    continue;
                }
                for ea in a.edges() {
                    for eb in b.edges() {
                        if let SegIntersection::Point(x) = ea.intersect(&eb) {
                            push(
                                x,
                                i,
                                j,
                                u,
                                &[(delta(x, i), cap(x, j)), (cap(x, j), cap(x, u))],
                            );
                        }
                    }
                }
            }
            // ... and (c) polygon corners of K_ij on the envelope (the curve
            // gamma_ij bends where the active location pair changes).
            for &x in regions[i][j].vertices() {
                push(x, i, j, j, &[(delta(x, i), cap(x, j))]);
            }
        }
    }
    out
}

/// Collapses coincident vertices within `snap` and counts the rest.
pub fn count_distinct_discrete(vertices: &[DiscreteVertex], snap: f64) -> usize {
    let pts: Vec<crate::vertices::NonzeroVertex> = vertices
        .iter()
        .map(|v| crate::vertices::NonzeroVertex {
            point: v.point,
            kind: crate::vertices::VertexKind::Crossing { i: 0, j: 0, k: 0 },
        })
        .collect();
    crate::vertices::count_distinct(&pts, snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn universe() -> Aabb {
        Aabb::new(Point::new(-200.0, -200.0), Point::new(200.0, 200.0))
    }

    fn random_objects(n: usize, k: usize, seed: u64) -> Vec<Vec<Point>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx: f64 = rng.random_range(-40.0..40.0);
                let cy: f64 = rng.random_range(-40.0..40.0);
                (0..k)
                    .map(|_| {
                        Point::new(
                            cx + rng.random_range(-2.0..2.0),
                            cy + rng.random_range(-2.0..2.0),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forbidden_region_semantics() {
        // Inside K_ij, delta_i >= Delta_j; outside, delta_i < Delta_j.
        let objs = random_objects(2, 4, 110);
        let k = forbidden_region(&objs[0], &objs[1], &universe());
        let mut rng = SmallRng::seed_from_u64(111);
        for _ in 0..500 {
            let q = Point::new(rng.random_range(-60.0..60.0), rng.random_range(-60.0..60.0));
            let inside = k.contains(q);
            let di = nearest_dist(&objs[0], q);
            let dj = farthest_dist(&objs[1], q);
            if (di - dj).abs() < 1e-9 {
                continue; // on the boundary
            }
            assert_eq!(inside, di >= dj, "q={q:?} di={di} dj={dj}");
        }
    }

    #[test]
    fn forbidden_region_boundary_size_linear_in_k() {
        // Lemma 2.13: O(k) boundary vertices despite k^2 half-planes.
        for k in [2usize, 4, 8, 16] {
            let objs = random_objects(2, k, 112 + k as u64);
            let poly = forbidden_region(&objs[0], &objs[1], &universe());
            if !poly.is_degenerate() {
                assert!(
                    poly.len() <= 4 * k + 8,
                    "k={k}: {} boundary vertices",
                    poly.len()
                );
            }
        }
    }

    #[test]
    fn certain_points_reduce_to_halfplane() {
        // k = 1: K_ij is the half-plane closer to p_j.
        let p_i = vec![Point::new(0.0, 0.0)];
        let p_j = vec![Point::new(4.0, 0.0)];
        let k = forbidden_region(&p_i, &p_j, &universe());
        assert!(k.contains(Point::new(10.0, 0.0)));
        assert!(!k.contains(Point::new(1.0, 0.0)));
        // Boundary is the bisector x = 2.
        assert!(k.contains(Point::new(2.0, 50.0)));
    }

    #[test]
    fn vertices_satisfy_equations() {
        let objs = random_objects(6, 3, 113);
        let verts = discrete_nonzero_vertices(&objs, &universe(), 1e-9);
        assert!(!verts.is_empty());
        for v in &verts {
            // Each vertex is on the envelope: some delta_i equals the min
            // cap within tolerance (checked inside push; re-verify the
            // envelope property independently).
            let m = (0..objs.len())
                .map(|u| farthest_dist(&objs[u], v.point))
                .fold(f64::INFINITY, f64::min);
            let near_env = (0..objs.len())
                .any(|i| (nearest_dist(&objs[i], v.point) - m).abs() < 1e-6 * (1.0 + m));
            assert!(near_env, "vertex off the envelope: {v:?}");
        }
    }

    #[test]
    fn vertex_count_grows_with_k() {
        // Theorem 2.14: complexity O(k n^3) — for fixed n, more locations
        // per point means more vertices (on average).
        let n = 5;
        let c1 = {
            let objs = random_objects(n, 1, 114);
            discrete_nonzero_vertices(&objs, &universe(), 1e-9).len()
        };
        let c4 = {
            let objs = random_objects(n, 4, 114);
            discrete_nonzero_vertices(&objs, &universe(), 1e-9).len()
        };
        assert!(c4 >= c1, "k=1: {c1}, k=4: {c4}");
    }

    #[test]
    fn k1_matches_continuous_vertex_semantics() {
        // With k = 1 every uncertain point is certain: V!=0 degenerates to
        // the standard Voronoi diagram, whose vertices are equidistant from
        // three sites.
        let objs = random_objects(7, 1, 115);
        let verts = discrete_nonzero_vertices(&objs, &universe(), 1e-9);
        for v in &verts {
            let dists: Vec<f64> = objs.iter().map(|o| o[0].dist(v.point)).collect();
            let min = dists.iter().copied().fold(f64::INFINITY, f64::min);
            let ties = dists.iter().filter(|&&d| (d - min).abs() < 1e-6).count();
            assert!(ties >= 3, "Voronoi vertex with only {ties} ties");
        }
    }
}

/// Point-location structure over the discrete-case `𝒱≠0(𝒫)`
/// (Theorem 2.14's data structure).
///
/// Builds the arrangement of all forbidden-region boundaries `∂K_ij` (a
/// refinement of `𝒱≠0`: every face of the refinement has a constant
/// `NN≠0`), labels each face via the exact two-stage index, and answers
/// queries by point location with an exact fallback outside the box.
#[derive(Clone, Debug)]
pub struct DiscreteNonzeroSubdivision {
    arr: unn_geom::arrangement::Arrangement,
    locator: unn_geom::arrangement::FaceLocator,
    labels: Vec<Vec<u32>>,
    bbox: Aabb,
    fallback: crate::twostage::DiscreteNonzeroIndex,
}

impl DiscreteNonzeroSubdivision {
    /// Builds the subdivision for queries inside `bbox`.
    pub fn build(objects: &[Vec<Point>], bbox: Aabb) -> Self {
        let fallback = crate::twostage::DiscreteNonzeroIndex::new(objects);
        let n = objects.len();
        let mut segments: Vec<unn_geom::Segment> = Vec::new();
        let c = [
            bbox.min,
            Point::new(bbox.max.x, bbox.min.y),
            bbox.max,
            Point::new(bbox.min.x, bbox.max.y),
        ];
        for i in 0..4 {
            segments.push(unn_geom::Segment::new(c[i], c[(i + 1) % 4]));
        }
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let k = forbidden_region(&objects[i], &objects[j], &bbox);
                for e in k.edges() {
                    if e.length() > 0.0 {
                        segments.push(e);
                    }
                }
            }
        }
        let scale = bbox.width().max(bbox.height()).max(1.0);
        let arr = unn_geom::arrangement::Arrangement::build(&segments, scale * 1e-12);
        let labels: Vec<Vec<u32>> = (0..arr.num_faces())
            .map(|fi| match arr.face_interior_point(fi) {
                Some(p) => fallback.query(p).into_iter().map(|x| x as u32).collect(),
                None => Vec::new(),
            })
            .collect();
        let locator = unn_geom::arrangement::FaceLocator::build(&arr, 128);
        DiscreteNonzeroSubdivision {
            arr,
            locator,
            labels,
            bbox,
            fallback,
        }
    }

    /// `NN≠0(q)` by point location; exact fallback outside the box.
    pub fn query(&self, q: Point) -> Vec<usize> {
        if self.bbox.contains(q) {
            if let Some(fi) = self.locator.locate(&self.arr, q) {
                return self.labels[fi].iter().map(|&x| x as usize).collect();
            }
        }
        self.fallback.query(q)
    }

    /// Exact reference query.
    pub fn query_exact(&self, q: Point) -> Vec<usize> {
        self.fallback.query(q)
    }

    /// Number of faces in the refinement.
    pub fn num_faces(&self) -> usize {
        self.arr.num_faces()
    }
}

#[cfg(test)]
mod subdivision_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn discrete_subdivision_matches_two_stage() {
        let mut rng = SmallRng::seed_from_u64(1000);
        let objects: Vec<Vec<Point>> = (0..8)
            .map(|_| {
                let cx: f64 = rng.random_range(-20.0..20.0);
                let cy: f64 = rng.random_range(-20.0..20.0);
                (0..3)
                    .map(|_| {
                        Point::new(
                            cx + rng.random_range(-3.0..3.0),
                            cy + rng.random_range(-3.0..3.0),
                        )
                    })
                    .collect()
            })
            .collect();
        let bbox = Aabb::new(Point::new(-40.0, -40.0), Point::new(40.0, 40.0));
        let sub = DiscreteNonzeroSubdivision::build(&objects, bbox);
        assert!(sub.num_faces() > 1);
        let mut agree = 0;
        let trials = 500;
        for _ in 0..trials {
            let q = Point::new(rng.random_range(-38.0..38.0), rng.random_range(-38.0..38.0));
            if sub.query(q) == sub.query_exact(q) {
                agree += 1;
            }
        }
        // Bisector-exact segments: mismatches only on measure-zero edges.
        assert!(agree >= trials - 5, "{agree}/{trials}");
        // Outside the box: fallback.
        let far = Point::new(500.0, 0.0);
        assert_eq!(sub.query(far), sub.query_exact(far));
    }

    #[test]
    fn k1_subdivision_is_voronoi() {
        // Certain points: the subdivision's labeled faces form the ordinary
        // Voronoi diagram (each face labeled by its single nearest site).
        let pts = [
            Point::new(-5.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(0.0, 6.0),
        ];
        let objects: Vec<Vec<Point>> = pts.iter().map(|&p| vec![p]).collect();
        let bbox = Aabb::new(Point::new(-20.0, -20.0), Point::new(20.0, 20.0));
        let sub = DiscreteNonzeroSubdivision::build(&objects, bbox);
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(sub.query(p), vec![i]);
        }
    }
}
