//! `NN≠0` queries under the `L∞` and `L1` metrics (paper §3, remark (ii)).
//!
//! The paper notes that with `L1`/`L∞` distances and `L1`/`L∞` "disks"
//! (diamonds / axis-aligned squares), the two-stage structure carries over:
//! stage 1 computes `Δ(q)` under the metric, stage 2 reports axis-aligned
//! squares intersecting a query square. Here supports are arbitrary
//! axis-aligned rectangles; `L1` reduces to `L∞` by the rotation
//! `(x, y) ↦ (x + y, x − y)`, which maps diamonds to squares and `L1`
//! distances to `L∞` distances exactly.
//!
//! Pruning piggybacks on the Euclidean kd-tree via the norm inequalities
//! `d∞ ≤ d2 ≤ √2·d∞`: searching with the scaled evaluation `√2·δ∞` keeps
//! every kd bound sound (see the comments in [`LinfNonzeroIndex::query`]).

use unn_geom::{Aabb, Point};
use unn_spatial::KdTree;

const SQRT2: f64 = std::f64::consts::SQRT_2;

/// Chebyshev (`L∞`) distance between points.
#[inline]
pub fn linf_dist(a: Point, b: Point) -> f64 {
    (a.x - b.x).abs().max((a.y - b.y).abs())
}

/// Minimum `L∞` distance from `q` to a closed rectangle.
#[inline]
pub fn linf_min_dist(rect: &Aabb, q: Point) -> f64 {
    let dx = (rect.min.x - q.x).max(0.0).max(q.x - rect.max.x);
    let dy = (rect.min.y - q.y).max(0.0).max(q.y - rect.max.y);
    dx.max(dy)
}

/// Maximum `L∞` distance from `q` to a closed rectangle (attained at a
/// corner).
#[inline]
pub fn linf_max_dist(rect: &Aabb, q: Point) -> f64 {
    let dx = (q.x - rect.min.x).abs().max((q.x - rect.max.x).abs());
    let dy = (q.y - rect.min.y).abs().max((q.y - rect.max.y).abs());
    dx.max(dy)
}

/// `L1` (Manhattan) distance between points.
#[inline]
pub fn l1_dist(a: Point, b: Point) -> f64 {
    (a.x - b.x).abs() + (a.y - b.y).abs()
}

/// The rotation `(x, y) ↦ (x + y, x − y)` turning `L1` into `L∞`.
#[inline]
pub fn rotate_l1_to_linf(p: Point) -> Point {
    Point::new(p.x + p.y, p.x - p.y)
}

/// Two-stage `NN≠0` index for axis-aligned rectangular supports under the
/// `L∞` metric.
#[derive(Clone, Debug)]
pub struct LinfNonzeroIndex {
    rects: Vec<Aabb>,
    /// Euclidean kd-tree over rect centers; aux = `√2 ×` the rect's `L∞`
    /// extent (half the larger side), making the scaled bounds sound.
    tree: KdTree,
}

impl LinfNonzeroIndex {
    /// Builds from rectangular supports (all must be non-empty).
    pub fn new(rects: &[Aabb]) -> Self {
        assert!(rects.iter().all(|r| !r.is_empty()), "empty support rect");
        let centers: Vec<Point> = rects.iter().map(|r| r.center()).collect();
        let exts: Vec<f64> = rects
            .iter()
            .map(|r| SQRT2 * 0.5 * r.width().max(r.height()))
            .collect();
        LinfNonzeroIndex {
            rects: rects.to_vec(),
            tree: KdTree::with_aux(&centers, &exts),
        }
    }

    /// Builds an index for *diamond* supports under the `L1` metric, by
    /// rotating into `L∞` space. Queries must be rotated too — use
    /// [`LinfNonzeroIndex::query_l1`].
    pub fn from_l1_diamonds(centers: &[Point], radii: &[f64]) -> Self {
        assert_eq!(centers.len(), radii.len());
        let rects: Vec<Aabb> = centers
            .iter()
            .zip(radii)
            .map(|(&c, &r)| {
                assert!(r >= 0.0);
                let rc = rotate_l1_to_linf(c);
                Aabb::new(
                    Point::new(rc.x - r, rc.y - r),
                    Point::new(rc.x + r, rc.y + r),
                )
            })
            .collect();
        Self::new(&rects)
    }

    /// Number of uncertain points.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Stage 1: `Δ∞(q) = min_i max-L∞-dist(q, R_i)`.
    pub fn min_max_dist(&self, q: Point) -> Option<f64> {
        let rects = &self.rects;
        // eval' = √2 · Δ∞_i ≥ √2 · d∞(q, c_i) ≥ d2(q, c_i): the kd-tree's
        // Euclidean lower bound is valid for eval'.
        self.tree
            .min_adjusted(q, &|i| SQRT2 * linf_max_dist(&rects[i], q))
            .map(|(_, v)| v / SQRT2)
    }

    fn min_two_max_dist(&self, q: Point) -> Option<(usize, f64, f64)> {
        let rects = &self.rects;
        let (best, v1) = self
            .tree
            .min_adjusted(q, &|i| SQRT2 * linf_max_dist(&rects[i], q))?;
        let v2 = self
            .tree
            .min_adjusted(q, &|i| {
                if i == best {
                    f64::INFINITY
                } else {
                    SQRT2 * linf_max_dist(&rects[i], q)
                }
            })
            .map_or(f64::INFINITY, |(_, v)| v);
        Some((best, v1 / SQRT2, v2 / SQRT2))
    }

    /// `NN≠0(q)` under `L∞` (Lemma 2.1 with the metric swapped), in index
    /// order.
    pub fn query(&self, q: Point) -> Vec<usize> {
        let Some((best, d1, d2)) = self.min_two_max_dist(q) else {
            return Vec::new();
        };
        let rects = &self.rects;
        let mut out = Vec::new();
        // eval' = √2 · δ∞_i ≥ √2 (d∞(q,c_i) − ext∞_i) ≥ d2(q,c_i) − aux_i
        // with aux_i = √2 · ext∞_i: the kd-tree's report bound is valid.
        self.tree.report_adjusted_below(
            q,
            SQRT2 * d1.max(d2),
            &|i| SQRT2 * linf_min_dist(&rects[i], q),
            &mut |i, v| {
                let threshold = if i == best { d2 } else { d1 };
                if v / SQRT2 < threshold {
                    out.push(i);
                }
            },
        );
        out.sort_unstable();
        out
    }

    /// `NN≠0` for an `L1` query against an index built with
    /// [`from_l1_diamonds`](Self::from_l1_diamonds).
    pub fn query_l1(&self, q: Point) -> Vec<usize> {
        self.query(rotate_l1_to_linf(q))
    }

    /// Reference linear scan.
    pub fn query_naive(&self, q: Point) -> Vec<usize> {
        let caps: Vec<f64> = self.rects.iter().map(|r| linf_max_dist(r, q)).collect();
        (0..self.rects.len())
            .filter(|&i| {
                let di = linf_min_dist(&self.rects[i], q);
                caps.iter().enumerate().all(|(j, &c)| j == i || di < c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<Aabb> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx: f64 = rng.random_range(-40.0..40.0);
                let cy: f64 = rng.random_range(-40.0..40.0);
                let w: f64 = rng.random_range(0.5..4.0);
                let h: f64 = rng.random_range(0.5..4.0);
                Aabb::new(Point::new(cx - w, cy - h), Point::new(cx + w, cy + h))
            })
            .collect()
    }

    #[test]
    fn min_max_dist_matches_brute_force() {
        let rects = random_rects(40, 31);
        let idx = LinfNonzeroIndex::new(&rects);
        let mut rng = SmallRng::seed_from_u64(32);
        for _ in 0..200 {
            let q = Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0));
            let brute = rects
                .iter()
                .map(|r| linf_max_dist(r, q))
                .fold(f64::INFINITY, f64::min);
            let fast = idx.min_max_dist(q).unwrap();
            assert!(
                (fast - brute).abs() <= 1e-9 * brute.max(1.0),
                "stage-1 Δ∞: fast={fast} brute={brute} at {q:?}"
            );
        }
    }

    #[test]
    fn linf_distances_basic() {
        let r = Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        assert_eq!(linf_min_dist(&r, Point::new(1.0, 0.5)), 0.0);
        assert_eq!(linf_min_dist(&r, Point::new(5.0, 0.5)), 3.0);
        assert_eq!(linf_min_dist(&r, Point::new(5.0, 9.0)), 8.0);
        assert_eq!(linf_max_dist(&r, Point::new(0.0, 0.0)), 2.0);
        assert_eq!(linf_max_dist(&r, Point::new(-1.0, 0.0)), 3.0);
    }

    #[test]
    fn rotation_preserves_l1_as_linf() {
        let mut rng = SmallRng::seed_from_u64(600);
        for _ in 0..200 {
            let a = Point::new(rng.random_range(-10.0..10.0), rng.random_range(-10.0..10.0));
            let b = Point::new(rng.random_range(-10.0..10.0), rng.random_range(-10.0..10.0));
            let want = l1_dist(a, b);
            let got = linf_dist(rotate_l1_to_linf(a), rotate_l1_to_linf(b));
            assert!((want - got).abs() < 1e-12);
        }
    }

    #[test]
    fn query_matches_naive() {
        let rects = random_rects(60, 601);
        let idx = LinfNonzeroIndex::new(&rects);
        let mut rng = SmallRng::seed_from_u64(602);
        for _ in 0..300 {
            let q = Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0));
            assert_eq!(idx.query(q), idx.query_naive(q), "q = {q:?}");
        }
    }

    #[test]
    fn l1_diamonds_semantics() {
        // Diamond at origin radius 2, diamond at (10, 0) radius 1: a query
        // at (4, 0): delta_0 = 4 - 2 = 2 (L1), Delta_1 = 6 + 1 = 7 -> both
        // could be NN? delta_1 = 6 - 1 = 5, Delta_0 = 4 + 2 = 6 > 5: yes.
        let idx = LinfNonzeroIndex::from_l1_diamonds(
            &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            &[2.0, 1.0],
        );
        assert_eq!(idx.query_l1(Point::new(4.0, 0.0)), vec![0, 1]);
        // Close to diamond 0: only it.
        assert_eq!(idx.query_l1(Point::new(0.0, 0.0)), vec![0]);
        // Note L1 metric: at (6.5, 0): delta_0 = 4.5, Delta_1 = 4.5 -> tie
        // excluded; just beyond, index 1 appears alone in stage-1 terms...
        let res = idx.query_l1(Point::new(8.0, 0.0));
        assert!(res.contains(&1));
    }

    #[test]
    fn square_metric_differs_from_euclidean() {
        // Under L-infinity the "ball" is a square: a support in the corner
        // direction is nearer than Euclid would say. Construct a case where
        // the L2 and Linf candidate sets differ.
        let rects = vec![
            // Unit square at the origin.
            Aabb::new(Point::new(-0.5, -0.5), Point::new(0.5, 0.5)),
            // Small square diagonal at (3, 3).
            Aabb::new(Point::new(2.9, 2.9), Point::new(3.1, 3.1)),
            // Small square axis-aligned at (4.4, 0).
            Aabb::new(Point::new(4.3, -0.1), Point::new(4.5, 0.1)),
        ];
        let idx = LinfNonzeroIndex::new(&rects);
        let q = Point::new(0.0, 0.0);
        // Linf distances: delta_1 = 2.9 (diagonal compresses), delta_2 = 4.3.
        // Delta_0 = 0.5 dominates everything; candidates = {0}.
        assert_eq!(idx.query(q), vec![0]);
        let q2 = Point::new(2.0, 2.0);
        let res = idx.query(q2);
        assert!(res.contains(&1), "diagonal square is Linf-near at {q2:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_linf_two_stage_equals_naive(
            seed in 0u64..3000, qx in -60.0f64..60.0, qy in -60.0f64..60.0,
        ) {
            let rects = random_rects(25, seed);
            let idx = LinfNonzeroIndex::new(&rects);
            let q = Point::new(qx, qy);
            prop_assert_eq!(idx.query(q), idx.query_naive(q));
        }

        #[test]
        fn prop_linf_distances_consistent(
            cx in -10.0f64..10.0, cy in -10.0f64..10.0,
            w in 0.1f64..5.0, h in 0.1f64..5.0,
            qx in -20.0f64..20.0, qy in -20.0f64..20.0,
        ) {
            let r = Aabb::new(Point::new(cx - w, cy - h), Point::new(cx + w, cy + h));
            let q = Point::new(qx, qy);
            let lo = linf_min_dist(&r, q);
            let hi = linf_max_dist(&r, q);
            prop_assert!(lo <= hi);
            // Linf <= L2 on the same geometry.
            prop_assert!(lo <= r.min_dist(q) + 1e-12);
            prop_assert!(hi <= r.max_dist(q) + 1e-12);
            // And L2 <= sqrt(2) * Linf.
            prop_assert!(r.min_dist(q) <= SQRT2 * lo + 1e-9);
            prop_assert!(r.max_dist(q) <= SQRT2 * hi + 1e-9);
        }
    }
}
