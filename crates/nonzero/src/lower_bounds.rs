//! The paper's lower-bound constructions, as executable generators.
//!
//! * [`mixed_radii_cubic`] — Theorem 2.7: `Ω(n³)` vertices with two families
//!   of huge disks flanking a column of unit disks.
//! * [`equal_radii_cubic`] — Theorem 2.8: `Ω(n³)` vertices with unit disks
//!   only.
//! * [`collinear_quadratic`] — Theorem 2.10: `Ω(n²)` vertices from disjoint
//!   equal disks on a line, with the paper's explicit vertex coordinates.
//! * [`disjoint_disks`] — random generator for the `O(λn²)` regime
//!   (pairwise-disjoint disks with bounded radius ratio, Lemma 2.9).
//!
//! Each construction returns the disks together with the number of vertices
//! the paper's argument guarantees, so experiments can assert
//! `measured >= predicted` and fit the growth exponent.

use rand::{Rng, RngExt};
use unn_geom::{Disk, Point};

/// A generated lower-bound instance.
#[derive(Clone, Debug)]
pub struct LowerBoundInstance {
    /// The uncertainty-region disks.
    pub disks: Vec<Disk>,
    /// Number of `𝒱≠0` vertices the construction provably realizes.
    pub predicted_vertices: usize,
    /// A safe snap distance for deduplicating vertices (well below the
    /// minimum distance between distinct construction vertices).
    pub snap: f64,
}

/// Theorem 2.7: `n = 4m` disks realizing `≥ 4m³` vertices.
///
/// Families `𝒟⁻`/`𝒟⁺` have radius `R = 8n²` with centers on the x-axis
/// spaced by `ω = 1/n²`; `𝒟⁰` has `2m` unit disks on the y-axis. Every
/// triple `(i, j, k)` yields two witness disks tangent to `D_i⁻`, `D_j⁺`
/// from outside and `D_k⁰` from inside.
pub fn mixed_radii_cubic(m: usize) -> LowerBoundInstance {
    assert!(m >= 1);
    let n = 4 * m;
    let r = 8.0 * (n * n) as f64;
    let omega = 1.0 / (n * n) as f64;
    let mut disks = Vec::with_capacity(n);
    for i in 1..=m {
        disks.push(Disk::new(
            Point::new(-r - 1.5 - (i as f64 - 1.0) * omega, 0.0),
            r,
        ));
    }
    for j in 1..=m {
        disks.push(Disk::new(
            Point::new(r + 1.5 + (j as f64 - 1.0) * omega, 0.0),
            r,
        ));
    }
    for k in 1..=(2 * m) {
        disks.push(Disk::new(
            Point::new(0.0, 4.0 * (k as f64 - m as f64) - 2.0),
            1.0,
        ));
    }
    LowerBoundInstance {
        disks,
        predicted_vertices: 2 * m * m * 2 * m,
        // Distinct vertices for different (i, j) pairs differ by ~omega/2 in
        // x; different k by ~2 in y.
        snap: omega * 1e-3,
    }
}

/// Theorem 2.8: `n = 3m` *unit* disks realizing `≥ m³` vertices.
///
/// `𝒟⁻`/`𝒟⁺` hug `(∓2, 0)` with spacing `ω`; `𝒟⁰` sits on the circle of
/// radius 2 around `(2, 0)` at angles `kθ`, `θ = π / (2(m+1))`, so that each
/// `D_k⁰` touches `D_1⁺`.
pub fn equal_radii_cubic(m: usize) -> LowerBoundInstance {
    assert!(m >= 1);
    let theta = core::f64::consts::FRAC_PI_2 / (m as f64 + 1.0);
    // "Sufficiently small" omega: well below the angular separation of the
    // tangency points (which is Θ(θ)).
    let omega = 1e-4 * theta / (m as f64);
    let mut disks = Vec::with_capacity(3 * m);
    for i in 1..=m {
        disks.push(Disk::new(
            Point::new(-2.0 - (i as f64 - 1.0) * omega, 0.0),
            1.0,
        ));
    }
    for j in 1..=m {
        disks.push(Disk::new(
            Point::new(2.0 + (j as f64 - 1.0) * omega, 0.0),
            1.0,
        ));
    }
    for k in 1..=m {
        let a = k as f64 * theta;
        disks.push(Disk::new(
            Point::new(2.0 - 2.0 * a.cos(), 2.0 * a.sin()),
            1.0,
        ));
    }
    LowerBoundInstance {
        disks,
        predicted_vertices: m * m * m,
        snap: omega * 1e-3,
    }
}

/// Theorem 2.10 lower bound: `n = 2m` disjoint unit disks on a line with
/// `Ω(n²)` vertices, plus the paper's explicit vertex coordinates.
pub fn collinear_quadratic(m: usize) -> LowerBoundInstance {
    assert!(m >= 2);
    let n = 2 * m;
    let disks: Vec<Disk> = (1..=n)
        .map(|i| Disk::new(Point::new(4.0 * (i as f64 - m as f64) - 2.0, 0.0), 1.0))
        .collect();
    // Pairs (i, j) with j - i >= 2 each contribute 2 vertices.
    let pairs = (1..=n)
        .flat_map(|i| ((i + 2)..=n).map(move |j| (i, j)))
        .count();
    LowerBoundInstance {
        disks,
        predicted_vertices: 2 * pairs,
        snap: 1e-6,
    }
}

/// The explicit vertex coordinates of the Theorem 2.10 construction, as
/// stated in the paper's proof (for cross-checking the enumerator).
pub fn collinear_predicted_vertices(m: usize) -> Vec<Point> {
    let n = 2 * m;
    let mut out = Vec::new();
    for i in 1..=n {
        for j in (i + 2)..=n {
            let x = 2.0 * (i as f64 + j as f64 - 2.0 * m as f64 - 1.0);
            let d = (j - i) as f64;
            if (i + j) % 2 == 0 {
                out.push(Point::new(x, d * d - 1.0));
                out.push(Point::new(x, 1.0 - d * d));
            } else {
                let y = d * (d * d - 4.0).sqrt();
                out.push(Point::new(x, y));
                out.push(Point::new(x, -y));
            }
        }
    }
    out
}

/// Random pairwise-disjoint disks with radii in `[1, λ]` (the `O(λn²)`
/// regime of Theorem 2.10 / Lemma 2.9), generated by dart throwing.
pub fn disjoint_disks(n: usize, lambda: f64, rng: &mut dyn Rng) -> Vec<Disk> {
    assert!(lambda >= 1.0);
    // Spread the disks over an area proportional to total disk area so the
    // rejection rate stays bounded.
    let side = (8.0 * n as f64).sqrt() * 2.0 * lambda;
    let mut disks: Vec<Disk> = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while disks.len() < n {
        attempts += 1;
        assert!(
            attempts < 1_000_000,
            "dart throwing failed; lambda or n too large for the board"
        );
        let d = Disk::new(
            Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)),
            rng.random_range(1.0..lambda.max(1.0 + 1e-9)),
        );
        if disks
            .iter()
            .all(|e| e.center.dist(d.center) > e.radius + d.radius + 1e-6)
        {
            disks.push(d);
        }
    }
    disks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertices::{count_distinct, nonzero_vertices};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn collinear_predicted_vertices_are_genuine_and_counted() {
        for m in [2usize, 3] {
            let inst = collinear_quadratic(m);
            let predicted = collinear_predicted_vertices(m);
            assert_eq!(predicted.len(), inst.predicted_vertices);
            // The explicit Theorem 2.10 coordinates come in mirror pairs and
            // are pairwise distinct at the instance's snap distance.
            for p in &predicted {
                assert!(predicted.iter().any(|q| q.x == p.x && q.y == -p.y));
            }
            for (a, &p) in predicted.iter().enumerate() {
                for &q in &predicted[a + 1..] {
                    assert!(
                        (p - q).norm() > inst.snap,
                        "predicted vertices collide: {p:?} vs {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_radii_realizes_cubic_count() {
        for m in [1usize, 2] {
            let inst = mixed_radii_cubic(m);
            assert_eq!(inst.disks.len(), 4 * m);
            let verts = nonzero_vertices(&inst.disks, 1e-9);
            let distinct = count_distinct(&verts, inst.snap);
            assert!(
                distinct >= inst.predicted_vertices,
                "m={m}: got {distinct}, predicted {}",
                inst.predicted_vertices
            );
        }
    }

    #[test]
    fn equal_radii_realizes_cubic_count() {
        for m in [2usize, 3] {
            let inst = equal_radii_cubic(m);
            assert_eq!(inst.disks.len(), 3 * m);
            let verts = nonzero_vertices(&inst.disks, 1e-9);
            let distinct = count_distinct(&verts, inst.snap);
            assert!(
                distinct >= inst.predicted_vertices,
                "m={m}: got {distinct}, predicted {}",
                inst.predicted_vertices
            );
        }
    }

    #[test]
    fn collinear_vertices_match_paper_formulas() {
        let m = 3;
        let inst = collinear_quadratic(m);
        let verts = nonzero_vertices(&inst.disks, 1e-9);
        let predicted = collinear_predicted_vertices(m);
        assert_eq!(predicted.len(), inst.predicted_vertices);
        // Every explicitly predicted vertex is found by the enumerator.
        for pv in &predicted {
            let found = verts.iter().any(|v| v.point.dist(*pv) < 1e-6);
            assert!(found, "predicted vertex {pv:?} not enumerated");
        }
        let distinct = count_distinct(&verts, inst.snap);
        assert!(distinct >= inst.predicted_vertices);
    }

    #[test]
    fn disjoint_generator_is_disjoint() {
        let mut rng = SmallRng::seed_from_u64(80);
        let disks = disjoint_disks(40, 4.0, &mut rng);
        assert_eq!(disks.len(), 40);
        for i in 0..disks.len() {
            for j in (i + 1)..disks.len() {
                assert!(
                    disks[i].center.dist(disks[j].center) > disks[i].radius + disks[j].radius,
                    "disks {i} and {j} overlap"
                );
            }
            assert!(disks[i].radius >= 1.0 && disks[i].radius <= 4.0);
        }
    }
}
