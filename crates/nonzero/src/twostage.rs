//! Near-linear-size two-stage structures for `NN≠0` queries (paper §3).
//!
//! Both structures answer a query in two stages, exactly as the paper
//! prescribes:
//!
//! 1. compute `Δ(q) = min_i Δ_i(q)` (the smallest guaranteed distance — the
//!    additively weighted Voronoi value for disks, the min-max distance for
//!    discrete points);
//! 2. report every `i` with `δ_i(q) < Δ(q)`.
//!
//! The paper realizes the stages with an AW-Voronoi point-location structure
//! plus the reporting structure of `[KMR⁺16]` (disks), and with 3-level
//! partition trees plus `[AC09]` halfspace reporting (discrete). Both are
//! replaced here by pruned kd-tree searches with identical outputs and
//! `O(log n + t)`-shaped observed query times (DESIGN.md §4); experiment E7
//! benchmarks the shape against the naive linear scan.

use unn_distr::DiscreteDistribution;
use unn_geom::hull::{convex_hull, farthest_on_hull, nearest_dist};
use unn_geom::{Disk, Point};
use unn_spatial::KdTree;

use crate::error::NonzeroError;

/// `NN≠0` index for uncertain points with disk supports (Theorem 3.1).
///
/// ```
/// use unn_geom::{Disk, Point};
/// use unn_nonzero::DiskNonzeroIndex;
///
/// let disks = vec![
///     Disk::new(Point::new(0.0, 0.0), 1.0),
///     Disk::new(Point::new(4.0, 0.0), 1.0),
///     Disk::new(Point::new(40.0, 0.0), 1.0), // far away: never the NN here
/// ];
/// let idx = DiskNonzeroIndex::new(&disks);
/// assert_eq!(idx.query(Point::new(2.0, 0.0)), vec![0, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct DiskNonzeroIndex {
    disks: Vec<Disk>,
    tree: KdTree,
}

impl DiskNonzeroIndex {
    /// Fallible [`DiskNonzeroIndex::new`]: rejects non-finite centers or
    /// radii and negative radii with a typed error. Zero radii are valid —
    /// they model zero-extent (certain) supports.
    pub fn try_new(disks: &[Disk]) -> Result<Self, NonzeroError> {
        for (index, d) in disks.iter().enumerate() {
            if !(d.center.is_finite() && d.radius.is_finite()) {
                return Err(NonzeroError::NonFiniteDisk { index });
            }
            if d.radius < 0.0 {
                return Err(NonzeroError::NegativeRadius {
                    index,
                    radius: d.radius,
                });
            }
        }
        Ok(Self::new(disks))
    }

    /// Builds the index from the support disks.
    pub fn new(disks: &[Disk]) -> Self {
        let centers: Vec<Point> = disks.iter().map(|d| d.center).collect();
        let radii: Vec<f64> = disks.iter().map(|d| d.radius).collect();
        DiskNonzeroIndex {
            disks: disks.to_vec(),
            tree: KdTree::with_aux(&centers, &radii),
        }
    }

    /// Number of uncertain points.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Stage 1: `Δ(q) = min_i (d(q, c_i) + r_i)`.
    ///
    /// Runs on the batched weighted kernel over the tree's stored radii —
    /// bit-identical to the closure form `min_adjusted(q, &|i|
    /// disks[i].max_dist(q))` because `Disk::max_dist` *is* `d(q, c_i) +
    /// r_i` in the same operation order.
    pub fn min_max_dist(&self, q: Point) -> Option<f64> {
        self.tree.min_adjusted_weighted(q).map(|(_, v)| v)
    }

    /// Stage 1 with the runner-up: `(argmin, Δ, second-smallest Δ_j)`.
    ///
    /// Lemma 2.1 compares `δ_i` against `Δ_j` over `j ≠ i`, so the disk
    /// realizing `Δ(q)` itself must be tested against the *second* minimum
    /// (this only matters for zero-extent supports, where `δ_i = Δ_i`).
    /// One batched single-pass walk replaces the former two `min_adjusted`
    /// descents with identical results.
    fn min_two_max_dist(&self, q: Point) -> Option<(usize, f64, f64)> {
        self.tree.min_two_adjusted_weighted(q)
    }

    /// `NN≠0(q)`: indices of all uncertain points with nonzero probability
    /// of being the nearest neighbor of `q` (Lemma 2.1), in index order.
    pub fn query(&self, q: Point) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_into(q, &mut out);
        out
    }

    /// [`DiskNonzeroIndex::query`] into a caller-provided buffer (cleared
    /// first): batch loops reuse one buffer per worker to keep the Lemma 2.1
    /// reporting stage allocation-free.
    pub fn query_into(&self, q: Point, out: &mut Vec<usize>) {
        out.clear();
        let Some((best, d1, d2)) = self.min_two_max_dist(q) else {
            return;
        };
        // Everyone except `best` is tested against d1; `best` against d2.
        // `report_ball_below` evaluates `(d(q, c_i) - r_i).max(0.0)` on the
        // batched kernel — exactly `Disk::min_dist`, bit for bit.
        self.tree.report_ball_below(q, d1.max(d2), &mut |i, v| {
            unn_observe::nonzero_candidate();
            let threshold = if i == best { d2 } else { d1 };
            if v < threshold {
                out.push(i);
            }
        });
        out.sort_unstable();
    }

    /// Scalar-oracle twin of [`DiskNonzeroIndex::query_into`]: both stages
    /// routed through the retained scalar kernels. The equivalence suite
    /// diffs it against the batched path; results must match exactly.
    #[doc(hidden)]
    pub fn query_into_scalar(&self, q: Point, out: &mut Vec<usize>) {
        out.clear();
        let Some((best, d1, d2)) = self.tree.min_two_adjusted_weighted_scalar(q) else {
            return;
        };
        self.tree
            .report_ball_below_scalar(q, d1.max(d2), &mut |i, v| {
                unn_observe::nonzero_candidate();
                let threshold = if i == best { d2 } else { d1 };
                if v < threshold {
                    out.push(i);
                }
            });
        out.sort_unstable();
    }

    /// Reference implementation: linear scan (the baseline of experiment E7).
    pub fn query_naive(&self, q: Point) -> Vec<usize> {
        let caps: Vec<f64> = self.disks.iter().map(|d| d.max_dist(q)).collect();
        (0..self.disks.len())
            .filter(|&i| {
                let delta_i = self.disks[i].min_dist(q);
                caps.iter()
                    .enumerate()
                    .all(|(j, &cap)| j == i || delta_i < cap)
            })
            .collect()
    }
}

/// `NN≠0` index for uncertain points with discrete distributions
/// (Theorem 3.2). Only the supports (location sets) matter.
#[derive(Clone, Debug)]
pub struct DiscreteNonzeroIndex {
    /// Location sets.
    objects: Vec<Vec<Point>>,
    /// Convex hulls (farthest-distance queries touch only hull vertices).
    hulls: Vec<Vec<Point>>,
    /// Stage-1 tree over centroids (aux 0: prune by `d(q, c_i) <= Δ_i`).
    tree_min: KdTree,
    /// Stage-2 tree over centroids (aux = extent: prune by
    /// `δ_i >= d(q, c_i) - extent_i`).
    tree_report: KdTree,
}

impl DiscreteNonzeroIndex {
    /// Fallible [`DiscreteNonzeroIndex::new`]: rejects empty supports and
    /// non-finite locations with a typed error instead of asserting.
    pub fn try_new(objects: &[Vec<Point>]) -> Result<Self, NonzeroError> {
        for (index, o) in objects.iter().enumerate() {
            if o.is_empty() {
                return Err(NonzeroError::EmptySupport { index });
            }
            if let Some(&point) = o.iter().find(|p| !p.is_finite()) {
                return Err(NonzeroError::NonFiniteLocation { index, point });
            }
        }
        Ok(Self::new(objects))
    }

    /// Builds from explicit location sets (weights are irrelevant to
    /// `NN≠0`, which depends only on supports).
    pub fn new(objects: &[Vec<Point>]) -> Self {
        assert!(objects.iter().all(|o| !o.is_empty()), "empty support");
        let hulls: Vec<Vec<Point>> = objects.iter().map(|o| convex_hull(o)).collect();
        let centroids: Vec<Point> = objects
            .iter()
            .map(|o| {
                let n = o.len() as f64;
                let (sx, sy) = o.iter().fold((0.0, 0.0), |(x, y), p| (x + p.x, y + p.y));
                Point::new(sx / n, sy / n)
            })
            .collect();
        let extents: Vec<f64> = objects
            .iter()
            .zip(&centroids)
            .map(|(o, c)| o.iter().map(|p| p.dist(*c)).fold(0.0, f64::max))
            .collect();
        DiscreteNonzeroIndex {
            objects: objects.to_vec(),
            hulls,
            tree_min: KdTree::new(&centroids),
            tree_report: KdTree::with_aux(&centroids, &extents),
        }
    }

    /// Builds from [`DiscreteDistribution`]s.
    pub fn from_distributions(ds: &[DiscreteDistribution]) -> Self {
        let objects: Vec<Vec<Point>> = ds.iter().map(|d| d.points().to_vec()).collect();
        Self::new(&objects)
    }

    /// Number of uncertain points.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Stage 1: `Δ(q) = min_i max_{p ∈ P_i} d(q, p)`.
    pub fn min_max_dist(&self, q: Point) -> Option<f64> {
        let hulls = &self.hulls;
        self.tree_min
            .min_adjusted(q, &|i| farthest_on_hull(&hulls[i], q))
            .map(|(_, v)| v)
    }

    /// Stage 1 with the runner-up (see [`DiskNonzeroIndex`]: the object
    /// realizing `Δ(q)` is tested against the second minimum, per the
    /// `j ≠ i` quantifier of Lemma 2.1).
    fn min_two_max_dist(&self, q: Point) -> Option<(usize, f64, f64)> {
        // Single-pass (min, second-min) walk: each hull's farthest-point
        // evaluation — the expensive part here — runs at most once, where
        // the former two-descent form could evaluate a hull twice.
        let hulls = &self.hulls;
        self.tree_min
            .min_two_adjusted(q, &|i| farthest_on_hull(&hulls[i], q))
    }

    /// `NN≠0(q)` for discrete supports, in index order.
    pub fn query(&self, q: Point) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_into(q, &mut out);
        out
    }

    /// [`DiscreteNonzeroIndex::query`] into a caller-provided buffer
    /// (cleared first); see [`DiskNonzeroIndex::query_into`].
    pub fn query_into(&self, q: Point, out: &mut Vec<usize>) {
        out.clear();
        let Some((best, d1, d2)) = self.min_two_max_dist(q) else {
            return;
        };
        let objects = &self.objects;
        self.tree_report.report_adjusted_below(
            q,
            d1.max(d2),
            &|i| nearest_dist(&objects[i], q),
            &mut |i, v| {
                unn_observe::nonzero_candidate();
                let threshold = if i == best { d2 } else { d1 };
                if v < threshold {
                    out.push(i);
                }
            },
        );
        out.sort_unstable();
    }

    /// Reference implementation: linear scan.
    pub fn query_naive(&self, q: Point) -> Vec<usize> {
        let caps: Vec<f64> = self.hulls.iter().map(|h| farthest_on_hull(h, q)).collect();
        (0..self.objects.len())
            .filter(|&i| {
                let delta_i = nearest_dist(&self.objects[i], q);
                caps.iter()
                    .enumerate()
                    .all(|(j, &cap)| j == i || delta_i < cap)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_disks(n: usize, seed: u64) -> Vec<Disk> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Disk::new(
                    Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)),
                    rng.random_range(0.5..5.0),
                )
            })
            .collect()
    }

    fn random_objects(n: usize, k: usize, seed: u64) -> Vec<Vec<Point>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx: f64 = rng.random_range(-50.0..50.0);
                let cy: f64 = rng.random_range(-50.0..50.0);
                (0..k)
                    .map(|_| {
                        Point::new(
                            cx + rng.random_range(-3.0..3.0),
                            cy + rng.random_range(-3.0..3.0),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn disk_query_matches_naive() {
        let disks = random_disks(80, 90);
        let idx = DiskNonzeroIndex::new(&disks);
        let mut rng = SmallRng::seed_from_u64(91);
        for _ in 0..200 {
            let q = Point::new(rng.random_range(-80.0..80.0), rng.random_range(-80.0..80.0));
            assert_eq!(idx.query(q), idx.query_naive(q), "q = {q:?}");
        }
    }

    #[test]
    fn discrete_query_matches_naive() {
        let objects = random_objects(60, 5, 92);
        let idx = DiscreteNonzeroIndex::new(&objects);
        let mut rng = SmallRng::seed_from_u64(93);
        for _ in 0..200 {
            let q = Point::new(rng.random_range(-80.0..80.0), rng.random_range(-80.0..80.0));
            assert_eq!(idx.query(q), idx.query_naive(q), "q = {q:?}");
        }
    }

    #[test]
    fn result_always_nonempty_and_contains_guaranteed_nn() {
        // The disk realizing Delta(q) always belongs to NN!=0(q):
        // delta_i < Delta_i of itself... more precisely delta_i(q) <
        // Delta_j(q) for all j != i when i minimizes Delta.
        let disks = random_disks(40, 94);
        let idx = DiskNonzeroIndex::new(&disks);
        let mut rng = SmallRng::seed_from_u64(95);
        for _ in 0..100 {
            let q = Point::new(rng.random_range(-80.0..80.0), rng.random_range(-80.0..80.0));
            let res = idx.query(q);
            assert!(!res.is_empty());
            let best = (0..disks.len())
                .min_by(|&a, &b| disks[a].max_dist(q).total_cmp(&disks[b].max_dist(q)))
                .unwrap();
            // delta_best <= Delta_best - 2 r_best < Delta_j unless r = 0 or
            // a tie; with positive radii the guaranteed NN is in the set.
            assert!(res.contains(&best), "guaranteed NN missing at {q:?}");
        }
    }

    #[test]
    fn query_inside_support_region() {
        // A query inside a disk: that disk is always a candidate.
        let disks = random_disks(30, 96);
        let idx = DiskNonzeroIndex::new(&disks);
        for (i, d) in disks.iter().enumerate() {
            let res = idx.query(d.center);
            assert!(res.contains(&i), "disk {i} missing at its own center");
        }
    }

    #[test]
    fn empty_and_single() {
        let idx = DiskNonzeroIndex::new(&[]);
        assert!(idx.query(Point::ORIGIN).is_empty());
        let one = DiskNonzeroIndex::new(&[Disk::new(Point::ORIGIN, 1.0)]);
        assert_eq!(one.query(Point::new(100.0, 0.0)), vec![0]);
        let didx = DiscreteNonzeroIndex::new(&[vec![Point::ORIGIN]]);
        assert_eq!(didx.query(Point::new(5.0, 5.0)), vec![0]);
    }

    #[test]
    fn discrete_singletons_reduce_to_certain_nn() {
        // k = 1: NN!=0 is exactly the set of nearest points (ties allowed);
        // away from bisectors it has size 1.
        let mut rng = SmallRng::seed_from_u64(97);
        let pts: Vec<Vec<Point>> = (0..50)
            .map(|_| {
                vec![Point::new(
                    rng.random_range(-50.0..50.0),
                    rng.random_range(-50.0..50.0),
                )]
            })
            .collect();
        let idx = DiscreteNonzeroIndex::new(&pts);
        for _ in 0..100 {
            let q = Point::new(rng.random_range(-60.0..60.0), rng.random_range(-60.0..60.0));
            let res = idx.query(q);
            let dmin = pts
                .iter()
                .map(|p| p[0].dist(q))
                .fold(f64::INFINITY, f64::min);
            // All reported are at distance exactly dmin (δ < Δ = dmin only
            // possible for δ = ... δ_i < dmin is impossible, δ_i <= dmin and
            // strict < Δ means ties are excluded unless Δ realized by
            // another point).
            for &i in &res {
                assert!(pts[i][0].dist(q) <= dmin + 1e-9);
            }
            assert!(
                !res.is_empty() || dmin == 0.0 || pts.len() == 1 || {
                    // all points tie: query exactly on a multi-bisector (rare)
                    true
                }
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_disk_two_stage_equals_naive(
            seed in 0u64..1000, qx in -80.0f64..80.0, qy in -80.0f64..80.0,
        ) {
            let disks = random_disks(25, seed);
            let idx = DiskNonzeroIndex::new(&disks);
            let q = Point::new(qx, qy);
            prop_assert_eq!(idx.query(q), idx.query_naive(q));
        }

        #[test]
        fn prop_discrete_two_stage_equals_naive(
            seed in 0u64..1000, qx in -80.0f64..80.0, qy in -80.0f64..80.0,
        ) {
            let objects = random_objects(20, 4, seed);
            let idx = DiscreteNonzeroIndex::new(&objects);
            let q = Point::new(qx, qy);
            prop_assert_eq!(idx.query(q), idx.query_naive(q));
        }
    }
}
