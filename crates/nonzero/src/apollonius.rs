//! The additively weighted (Apollonius) Voronoi diagram `𝕄` (paper §2.1).
//!
//! The projection of the lower envelope `Δ(x) = min_i (d(x, c_i) + r_i)` is
//! the additively weighted Voronoi diagram of the disk centers with weights
//! `r_i` `[AB86]`: it has linear complexity, its edges are hyperbolic arcs,
//! and the breakpoints of the curves `γ_i` lie on its edges. The paper uses
//! `𝕄` for stage 1 of the `NN≠0` query (computing `Δ(q)` by point location).
//!
//! Each cell is star-shaped around its center, so — exactly like the
//! `γ_i` machinery — a cell is the region under a *lower envelope of focal
//! polar curves*: the bisector of sites `i` and `j` seen from `c_i` is the
//! locus `d(x, c_j) − d(x, c_i) = r_i − r_j`, i.e.
//! `FocalCurve::new(c_j − c_i, r_i − r_j)`. This module builds all `n`
//! cell envelopes (`O(n² log n)` total) and answers point location and
//! `Δ(q)` queries; the diagram's combinatorial size is exposed for the
//! linear-complexity check.

use unn_geom::angle::norm_angle;
use unn_geom::{Disk, FocalCurve, Point};

use crate::gamma::{envelope, EnvArc};

/// One cell of the Apollonius diagram, as a radial envelope around its site.
#[derive(Clone, Debug)]
struct Cell {
    center: Point,
    curves: Vec<FocalCurve>,
    arcs: Vec<EnvArc>,
    /// `false` when some other site dominates this one everywhere
    /// (`d(c_i, c_j) + r_j <= r_i`): the cell is empty.
    nonempty: bool,
}

/// The additively weighted Voronoi diagram of disks (centers weighted by
/// radii) — the paper's subdivision `𝕄`.
#[derive(Clone, Debug)]
pub struct ApolloniusDiagram {
    disks: Vec<Disk>,
    cells: Vec<Cell>,
}

impl ApolloniusDiagram {
    /// Builds all cell envelopes.
    pub fn build(disks: &[Disk]) -> Self {
        let cells = (0..disks.len())
            .map(|i| {
                let c_i = disks[i].center;
                let r_i = disks[i].radius;
                let mut curves = Vec::new();
                let mut nonempty = true;
                for (j, d_j) in disks.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let e = d_j.center - c_i;
                    let shift = r_i - d_j.radius;
                    // Dominance cases where |shift| >= |e|:
                    if shift >= e.norm() {
                        // d(x,c_j) - d(x,c_i) <= |e| <= shift everywhere:
                        // site j is always at least as close (weighted) —
                        // cell i is empty.
                        nonempty = false;
                        break;
                    }
                    // shift <= -|e|: site i dominates j; no constraint.
                    if let Some(c) = FocalCurve::new(e, shift) {
                        curves.push(c);
                    }
                }
                let arcs = if nonempty {
                    envelope(&curves)
                } else {
                    Vec::new()
                };
                Cell {
                    center: c_i,
                    curves,
                    arcs,
                    nonempty,
                }
            })
            .collect();
        ApolloniusDiagram {
            disks: disks.to_vec(),
            cells,
        }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// `true` when there are no sites.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Radial extent of cell `i` in direction `theta` (`+∞` when the cell is
    /// unbounded in that direction, `None` when the cell is empty).
    pub fn cell_radial(&self, i: usize, theta: f64) -> Option<f64> {
        let cell = &self.cells[i];
        if !cell.nonempty {
            return None;
        }
        let theta = norm_angle(theta);
        let idx = cell.arcs.partition_point(|a| a.a1 < theta);
        match cell.arcs.get(idx) {
            Some(arc) if arc.a0 <= theta => {
                Some(cell.curves[arc.curve as usize].radial_or_inf(theta))
            }
            _ => Some(f64::INFINITY),
        }
    }

    /// `true` iff `q` lies in the (closed) cell of site `i`, i.e. site `i`
    /// minimizes `d(q, c_j) + r_j` (up to boundary ties).
    pub fn cell_contains(&self, i: usize, q: Point) -> bool {
        let cell = &self.cells[i];
        if !cell.nonempty {
            return false;
        }
        let v = q - cell.center;
        let t = v.norm();
        if t == 0.0 {
            return true;
        }
        match self.cell_radial(i, v.angle()) {
            Some(r) => t <= r,
            None => false,
        }
    }

    /// The weighted nearest site and `Δ(q) = min_i d(q, c_i) + r_i`, by
    /// linear scan (the structural queries above are the point of this
    /// type; use `DiskNonzeroIndex` for fast `Δ` queries).
    pub fn weighted_nn(&self, q: Point) -> Option<(usize, f64)> {
        self.disks
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.max_dist(q)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Total number of envelope arcs over all cells — proportional to the
    /// diagram's edge count, which `[AB86]` bounds by `O(n)`.
    pub fn total_arcs(&self) -> usize {
        self.cells.iter().map(|c| c.arcs.len()).sum()
    }

    /// Number of empty cells (sites dominated by another site).
    pub fn empty_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.nonempty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use unn_geom::Vector;

    fn random_disks(n: usize, seed: u64) -> Vec<Disk> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Disk::new(
                    Point::new(rng.random_range(-40.0..40.0), rng.random_range(-40.0..40.0)),
                    rng.random_range(0.2..3.0),
                )
            })
            .collect()
    }

    #[test]
    fn cell_boundary_is_weighted_bisector() {
        let disks = random_disks(12, 950);
        let ap = ApolloniusDiagram::build(&disks);
        for i in 0..disks.len() {
            for k in 0..64 {
                let theta = k as f64 * std::f64::consts::TAU / 64.0;
                let Some(r) = ap.cell_radial(i, theta) else {
                    continue;
                };
                if !r.is_finite() {
                    continue;
                }
                // A point on the radial boundary of cell i ties the weighted
                // distance: d(p, c_i) + r_i == min_j d(p, c_j) + r_j.
                let p = disks[i].center + Vector::from_angle(theta) * r;
                let own = disks[i].max_dist(p);
                let best = disks
                    .iter()
                    .map(|d| d.max_dist(p))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    (own - best).abs() <= 1e-6 * own.max(1.0),
                    "boundary of cell {i} at θ={theta}: own={own} best={best}"
                );
            }
        }
    }

    #[test]
    fn membership_matches_weighted_nn() {
        let disks = random_disks(25, 900);
        let ap = ApolloniusDiagram::build(&disks);
        let mut rng = SmallRng::seed_from_u64(901);
        for _ in 0..500 {
            let q = Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0));
            let (winner, best) = ap.weighted_nn(q).unwrap();
            // Skip near-ties (boundary membership is closed on both sides).
            let second = disks
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != winner)
                .map(|(_, d)| d.max_dist(q))
                .fold(f64::INFINITY, f64::min);
            if second - best < 1e-9 {
                continue;
            }
            for i in 0..disks.len() {
                assert_eq!(
                    ap.cell_contains(i, q),
                    i == winner,
                    "q={q:?} i={i} winner={winner}"
                );
            }
        }
    }

    #[test]
    fn dominated_site_has_empty_cell() {
        // A small disk deep inside a big one: the big disk's weighted
        // distance d + R always wins... dominance means d(c_i,c_j) + r_j <=
        // r_i: the small disk (with tiny radius) dominates the big one!
        let disks = vec![
            Disk::new(Point::new(0.0, 0.0), 5.0),
            Disk::new(Point::new(0.5, 0.0), 0.5),
        ];
        let ap = ApolloniusDiagram::build(&disks);
        // Site 1 (weight 0.5, at distance 0.5 from site 0's center) beats
        // site 0 everywhere: d(q,c1) + 0.5 <= d(q,c0) + 0.5 + 0.5 <= …
        // check: d(c0,c1) + r_1 = 1.0 <= r_0 = 5.0 -> cell 0 empty.
        assert_eq!(ap.empty_cells(), 1);
        assert!(!ap.cell_contains(0, Point::new(0.0, 0.0)));
        assert!(ap.cell_contains(1, Point::new(100.0, 0.0)));
    }

    #[test]
    fn equal_weights_reduce_to_voronoi() {
        // Equal radii: the diagram is the ordinary Voronoi diagram of the
        // centers; membership = plain nearest center.
        let disks = random_disks(15, 902)
            .into_iter()
            .map(|d| Disk::new(d.center, 1.0))
            .collect::<Vec<_>>();
        let ap = ApolloniusDiagram::build(&disks);
        let mut rng = SmallRng::seed_from_u64(903);
        for _ in 0..200 {
            let q = Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0));
            let nn = disks
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.center.dist(q).total_cmp(&b.1.center.dist(q)))
                .unwrap()
                .0;
            assert!(ap.cell_contains(nn, q), "q = {q:?}");
        }
    }

    #[test]
    fn total_complexity_linearish() {
        // [AB86]: the diagram has O(n) edges. Our per-cell envelopes can
        // overcount (each edge appears in two cells) but the total should
        // grow near-linearly, not quadratically.
        let mut counts = Vec::new();
        for &n in &[16usize, 32, 64, 128] {
            let disks = random_disks(n, 904 + n as u64);
            let ap = ApolloniusDiagram::build(&disks);
            counts.push((n as f64, ap.total_arcs() as f64));
        }
        let slope = {
            let pts: Vec<(f64, f64)> = counts.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
            let n = pts.len() as f64;
            let sx: f64 = pts.iter().map(|p| p.0).sum();
            let sy: f64 = pts.iter().map(|p| p.1).sum();
            let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
            let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
            (n * sxy - sx * sy) / (n * sxx - sx * sx)
        };
        assert!(slope < 1.5, "arc growth exponent {slope:.2} (expected ~1)");
    }

    #[test]
    fn cells_cover_the_plane() {
        // Every query belongs to at least one cell (ties on boundaries may
        // put it in several).
        let disks = random_disks(12, 905);
        let ap = ApolloniusDiagram::build(&disks);
        let mut rng = SmallRng::seed_from_u64(906);
        for _ in 0..300 {
            let q = Point::new(rng.random_range(-60.0..60.0), rng.random_range(-60.0..60.0));
            assert!(
                (0..disks.len()).any(|i| ap.cell_contains(i, q)),
                "q = {q:?} in no cell"
            );
        }
    }
}
