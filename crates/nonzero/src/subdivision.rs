//! The nonzero Voronoi diagram as a point-location structure (Theorem 2.11).
//!
//! Builds the planar subdivision `𝒱≠0(𝒫)` for disk supports inside a query
//! bounding box: each curve `γ_i` is adaptively polygonalized
//! ([`GammaCurve::polylines`]), the box boundary is added, and the induced
//! arrangement is extracted with `unn-geom`'s [`Arrangement`]. Every face is
//! labeled with its set `𝒫_φ = NN≠0(·)` (constant per face, Lemma 2.3).
//!
//! Labels are stored as [`PersistentSet`] versions derived face-to-face
//! along a BFS of the face-adjacency graph — the paper's `O(μ)`-space trick
//! (§2.1, `[DSST89]`): adjacent faces differ in exactly one element, so each
//! step stores `O(log n)` new nodes instead of a full copy. The explicit
//! (copying) representation is kept available for the E14 ablation.
//!
//! Polygonalization error only perturbs face *boundaries* by at most `tol`;
//! each face's label is recomputed exactly (two-stage index) at an interior
//! sample, so any query point at distance `> tol` from every true curve is
//! answered exactly. Queries outside the box (or on a boundary sliver) fall
//! back to the exact two-stage index.

use unn_geom::arrangement::{Arrangement, FaceLocator};
use unn_geom::{Aabb, Disk, Point, Segment};
use unn_spatial::PersistentSet;

use crate::gamma::GammaCurve;
use crate::twostage::DiskNonzeroIndex;

/// Build statistics (combinatorial sizes for the complexity experiments).
#[derive(Clone, Copy, Debug, Default)]
pub struct SubdivisionStats {
    /// Vertices in the polygonalized arrangement.
    pub vertices: usize,
    /// Edges in the polygonalized arrangement.
    pub edges: usize,
    /// Bounded faces.
    pub faces: usize,
    /// Total persistent-set nodes that would be stored explicitly
    /// (sum of label-set sizes) — the `O(nμ)` explicit cost.
    pub explicit_label_elems: usize,
    /// Label-set deltas actually performed along the BFS (the `O(μ)` cost).
    pub persistent_deltas: usize,
}

/// Point-location structure over `𝒱≠0(𝒫)` for disk supports.
#[derive(Clone, Debug)]
pub struct NonzeroSubdivision {
    arr: Arrangement,
    locator: FaceLocator,
    labels: Vec<PersistentSet>,
    bbox: Aabb,
    fallback: DiskNonzeroIndex,
    stats: SubdivisionStats,
}

impl NonzeroSubdivision {
    /// Builds the subdivision for queries inside `bbox`.
    ///
    /// `tol` is the polygonalization tolerance (absolute distance); the
    /// number of segments grows roughly as `tol^(-1/2)`.
    pub fn build(disks: &[Disk], bbox: Aabb, tol: f64) -> Self {
        let fallback = DiskNonzeroIndex::new(disks);
        let mut segments: Vec<Segment> = Vec::new();
        // Box boundary.
        let c = [
            bbox.min,
            Point::new(bbox.max.x, bbox.min.y),
            bbox.max,
            Point::new(bbox.min.x, bbox.max.y),
        ];
        for i in 0..4 {
            segments.push(Segment::new(c[i], c[(i + 1) % 4]));
        }
        // Curves, clipped at a radius covering the box from each center.
        for i in 0..disks.len() {
            let g = GammaCurve::build(disks, i);
            let r_max = c
                .iter()
                .map(|&corner| corner.dist(disks[i].center))
                .fold(0.0, f64::max)
                * 1.05
                + 1.0;
            for poly in g.polylines(tol, r_max) {
                for w in poly.windows(2) {
                    if w[0].dist2(w[1]) > 0.0 {
                        segments.push(Segment::new(w[0], w[1]));
                    }
                }
            }
        }
        let scale = bbox.width().max(bbox.height()).max(1.0);
        let arr = Arrangement::build(&segments, (tol * 1e-3).min(scale * 1e-10).max(1e-12));

        // Label faces along a BFS over face adjacency, deriving each label
        // set persistently from its parent's.
        let nf = arr.num_faces();
        let mut labels: Vec<Option<PersistentSet>> = vec![None; nf];
        let mut explicit_elems = 0usize;
        let mut deltas = 0usize;

        // Face adjacency from shared (undirected) boundary edges.
        let mut edge_faces: std::collections::HashMap<(u32, u32), Vec<u32>> = Default::default();
        for (fi, f) in arr.faces().iter().enumerate() {
            let b = &f.boundary;
            for i in 0..b.len() {
                let u = b[i];
                let v = b[(i + 1) % b.len()];
                let key = (u.min(v), u.max(v));
                edge_faces.entry(key).or_default().push(fi as u32);
            }
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nf];
        for faces in edge_faces.values() {
            if faces.len() == 2 && faces[0] != faces[1] {
                adj[faces[0] as usize].push(faces[1]);
                adj[faces[1] as usize].push(faces[0]);
            }
        }

        let label_of = |fi: usize| -> Option<Vec<usize>> {
            let p = arr.face_interior_point(fi)?;
            Some(fallback.query(p))
        };

        for start in 0..nf {
            if labels[start].is_some() {
                continue;
            }
            let Some(base) = label_of(start) else {
                labels[start] = Some(PersistentSet::new());
                continue;
            };
            explicit_elems += base.len();
            deltas += base.len();
            labels[start] = Some(PersistentSet::from_iter(base.iter().map(|&x| x as u32)));
            let mut queue = std::collections::VecDeque::from([start as u32]);
            while let Some(fi) = queue.pop_front() {
                // Only faces whose label was just written are enqueued, so
                // this is always `Some`; skipping (instead of panicking)
                // degrades to an unlabeled face if the invariant ever broke.
                let Some(parent) = labels[fi as usize].clone() else {
                    debug_assert!(false, "BFS dequeued unlabeled face {fi}");
                    continue;
                };
                for &nb in &adj[fi as usize] {
                    if labels[nb as usize].is_some() {
                        continue;
                    }
                    let Some(want) = label_of(nb as usize) else {
                        labels[nb as usize] = Some(parent.clone());
                        continue;
                    };
                    explicit_elems += want.len();
                    // Derive from parent by symmetric difference.
                    let mut set = parent.clone();
                    let want_set: std::collections::HashSet<u32> =
                        want.iter().map(|&x| x as u32).collect();
                    for x in parent.iter() {
                        if !want_set.contains(&x) {
                            set = set.remove(x);
                            deltas += 1;
                        }
                    }
                    for &x in &want_set {
                        if !parent.contains(x) {
                            set = set.insert(x);
                            deltas += 1;
                        }
                    }
                    labels[nb as usize] = Some(set);
                    queue.push_back(nb);
                }
            }
        }

        let stats = SubdivisionStats {
            vertices: arr.num_vertices(),
            edges: arr.num_edges(),
            faces: arr.num_faces(),
            explicit_label_elems: explicit_elems,
            persistent_deltas: deltas,
        };
        let locator = FaceLocator::build(&arr, 128);
        NonzeroSubdivision {
            arr,
            locator,
            labels: labels.into_iter().map(|l| l.unwrap_or_default()).collect(),
            bbox,
            fallback,
            stats,
        }
    }

    /// `NN≠0(q)` by point location (`O(log μ + t)` shape); falls back to the
    /// two-stage index outside the box or on degenerate locations.
    pub fn query(&self, q: Point) -> Vec<usize> {
        if self.bbox.contains(q) {
            if let Some(fi) = self.locator.locate(&self.arr, q) {
                return self.labels[fi].iter().map(|x| x as usize).collect();
            }
        }
        self.fallback.query(q)
    }

    /// Exact query via the embedded two-stage index (for verification).
    pub fn query_exact(&self, q: Point) -> Vec<usize> {
        self.fallback.query(q)
    }

    /// Combinatorial statistics of the built subdivision.
    pub fn stats(&self) -> SubdivisionStats {
        self.stats
    }

    /// The underlying arrangement (inspection / experiments).
    pub fn arrangement(&self) -> &Arrangement {
        &self.arr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_disks(n: usize, seed: u64) -> Vec<Disk> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Disk::new(
                    Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0)),
                    rng.random_range(0.5..4.0),
                )
            })
            .collect()
    }

    fn bbox() -> Aabb {
        Aabb::new(Point::new(-60.0, -60.0), Point::new(60.0, 60.0))
    }

    #[test]
    fn subdivision_queries_match_two_stage() {
        let disks = random_disks(10, 100);
        let sub = NonzeroSubdivision::build(&disks, bbox(), 1e-3);
        let mut rng = SmallRng::seed_from_u64(101);
        let mut mismatches = 0;
        let total = 500;
        for _ in 0..total {
            let q = Point::new(rng.random_range(-55.0..55.0), rng.random_range(-55.0..55.0));
            let got = sub.query(q);
            let want = sub.query_exact(q);
            if got != want {
                // Only acceptable near a curve (within polygonalization tol).
                mismatches += 1;
                let delta_gap = min_gap(&disks, q);
                assert!(
                    delta_gap < 1e-2,
                    "mismatch far from any boundary: q={q:?} got={got:?} want={want:?} gap={delta_gap}"
                );
            }
        }
        // The overwhelming majority must match exactly.
        assert!(mismatches * 50 < total, "{mismatches}/{total} mismatches");
    }

    /// Distance of q from the nearest gamma boundary, in constraint space.
    fn min_gap(disks: &[Disk], q: Point) -> f64 {
        let cap = disks
            .iter()
            .map(|d| d.max_dist(q))
            .fold(f64::INFINITY, f64::min);
        disks
            .iter()
            .map(|d| (d.min_dist(q) - cap).abs())
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn outside_box_falls_back() {
        let disks = random_disks(6, 102);
        let sub = NonzeroSubdivision::build(&disks, bbox(), 1e-3);
        let q = Point::new(500.0, 500.0);
        assert_eq!(sub.query(q), sub.query_exact(q));
    }

    #[test]
    fn persistent_storage_is_cheaper_than_explicit() {
        let disks = random_disks(12, 103);
        let sub = NonzeroSubdivision::build(&disks, bbox(), 2e-3);
        let s = sub.stats();
        assert!(s.faces > 1);
        // The paper's point: deltas (persistent cost) grow like mu, explicit
        // like n * mu. With 12 disks the gap must already be visible.
        assert!(
            s.persistent_deltas < s.explicit_label_elems,
            "deltas {} vs explicit {}",
            s.persistent_deltas,
            s.explicit_label_elems
        );
    }

    #[test]
    fn euler_formula_holds() {
        let disks = random_disks(8, 104);
        let sub = NonzeroSubdivision::build(&disks, bbox(), 1e-3);
        let (_, _, _, _, ok) = sub.arrangement().euler_check();
        assert!(ok);
    }
}
