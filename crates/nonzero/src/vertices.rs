//! Exact vertex enumeration for `𝒱≠0(𝒫)` with disk supports.
//!
//! The proof of Theorem 2.5 characterizes the vertices of the nonzero
//! Voronoi diagram:
//!
//! * **curve crossings** `γ_i ∩ γ_j`: points `v` with
//!   `δ_i(v) = δ_j(v) = Δ_k(v) = Δ(v)` for the disk `k` realizing the lower
//!   envelope — geometrically, a disk centered at `v` touching `D_i` and
//!   `D_j` from outside and `D_k` from inside, containing no disk;
//! * **breakpoints** of a single `γ_i`: points with
//!   `δ_i(v) = Δ_j(v) = Δ_k(v) = Δ(v)` — the crossing of `γ_i` with an edge
//!   of the additively weighted Voronoi diagram `𝕄`.
//!
//! Every constraint `δ_a = Δ_b` and `Δ_a = Δ_b` is a [`FocalCurve`] around a
//! shared focus, so both vertex types reduce to intersecting two focal
//! curves around a common origin — a closed-form computation
//! ([`FocalCurve::intersect_angles`], at most two candidates per triple).
//! Each candidate is validated against `Δ(v) = min_l Δ_l(v)` with an
//! additively-weighted nearest-neighbor query (kd-tree). Total work is
//! `O(n³ log n)`, matching the `Θ(n³)` worst-case output (Theorems 2.5,
//! 2.7, 2.8) up to the log factor.

use unn_geom::{Disk, FocalCurve, Point, Vector};
use unn_spatial::KdTree;

/// Which degeneracy of the subdivision a vertex realizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VertexKind {
    /// `δ_i = δ_j = Δ_k = Δ`: crossing of `γ_i` and `γ_j`.
    Crossing {
        /// First disk touched from outside.
        i: u32,
        /// Second disk touched from outside.
        j: u32,
        /// Disk touched from inside (realizes the envelope `Δ`).
        k: u32,
    },
    /// `δ_i = Δ_j = Δ_k = Δ`: breakpoint of `γ_i` on an edge of `𝕄`.
    Breakpoint {
        /// Disk touched from outside.
        i: u32,
        /// First envelope disk.
        j: u32,
        /// Second envelope disk.
        k: u32,
    },
}

/// A vertex of the nonzero Voronoi diagram.
#[derive(Clone, Copy, Debug)]
pub struct NonzeroVertex {
    /// Location.
    pub point: Point,
    /// The triple realizing it.
    pub kind: VertexKind,
}

/// Enumerates all vertices of `𝒱≠0` for disk supports, exactly (up to the
/// relative tolerance `tol_rel` used in envelope validation).
///
/// Returns vertices of both kinds; coincident vertices from distinct triples
/// (degenerate inputs) are all reported — use [`count_distinct`] to collapse
/// them.
#[allow(clippy::needless_range_loop)] // parallel index into curves and labels
pub fn nonzero_vertices(disks: &[Disk], tol_rel: f64) -> Vec<NonzeroVertex> {
    let n = disks.len();
    let mut out = Vec::new();
    if n < 3 {
        return out;
    }
    let centers: Vec<Point> = disks.iter().map(|d| d.center).collect();
    let radii: Vec<f64> = disks.iter().map(|d| d.radius).collect();
    let tree = KdTree::with_aux(&centers, &radii);

    // Tolerance anchored to the *input* scale: a candidate at distance `D`
    // from the input carries `O(D·ulp)` rounding, but scaling the tolerance
    // with `D` would blindly validate the near-infinity artifacts produced by
    // intersecting asymptotically parallel curves. Instead candidates far
    // beyond the input (where genuine envelope ties still differ by input-
    // scale amounts) must match within an input-scale tolerance.
    let scale = disks
        .iter()
        .map(|d| d.center.to_vector().norm() + d.radius)
        .fold(1.0f64, f64::max);
    let tol_abs = tol_rel * scale;

    // Validation: Delta_k(v) must equal Delta(v) = min_l d(v, c_l) + r_l.
    let validate = |v: Point, val: f64| -> bool {
        if !v.is_finite() {
            return false;
        }
        // `n >= 3` here (checked by the caller), so the tree is nonempty
        // and the traversal always yields a minimum; rejecting the vertex
        // is the safe degradation if that invariant ever broke.
        let Some((_, min_v)) = tree.min_adjusted(v, &|l| centers[l].dist(v) + radii[l]) else {
            debug_assert!(false, "min_adjusted on empty tree despite n >= 3");
            return false;
        };
        val <= min_v + tol_abs
    };

    // Crossing vertices: for each ordered anchor k and unordered pair i < j,
    // intersect the focal curves {delta_i = Delta_k} and {delta_j = Delta_k}
    // around c_k.
    for k in 0..n {
        // Pre-build curves around c_k for all i != k.
        let curves: Vec<Option<FocalCurve>> = (0..n)
            .map(|i| {
                if i == k {
                    None
                } else {
                    FocalCurve::new(centers[i] - centers[k], radii[i] + radii[k])
                }
            })
            .collect();
        for i in 0..n {
            let Some(ci) = &curves[i] else { continue };
            for j in (i + 1)..n {
                let Some(cj) = &curves[j] else { continue };
                for theta in ci.intersect_angles(cj) {
                    let t = ci.radial_or_inf(theta);
                    if !t.is_finite() {
                        continue;
                    }
                    let v = centers[k] + Vector::from_angle(theta) * t;
                    // Delta_k(v) = d(v, c_k) + r_k = t + r_k.
                    let val = t + radii[k];
                    if validate(v, val) {
                        out.push(NonzeroVertex {
                            point: v,
                            kind: VertexKind::Crossing {
                                i: i as u32,
                                j: j as u32,
                                k: k as u32,
                            },
                        });
                    }
                }
            }
        }
    }

    // Breakpoint vertices: anchor j; curves around c_j are
    // {delta_i = Delta_j} (shift r_i + r_j) and the weighted bisector
    // {Delta_j = Delta_k} (shift r_j - r_k).
    for j in 0..n {
        let gamma_curves: Vec<Option<FocalCurve>> = (0..n)
            .map(|i| {
                if i == j {
                    None
                } else {
                    FocalCurve::new(centers[i] - centers[j], radii[i] + radii[j])
                }
            })
            .collect();
        let bis_curves: Vec<Option<FocalCurve>> = (0..n)
            .map(|k| {
                if k == j {
                    None
                } else {
                    FocalCurve::new(centers[k] - centers[j], radii[j] - radii[k])
                }
            })
            .collect();
        for i in 0..n {
            let Some(gi) = &gamma_curves[i] else { continue };
            for k in 0..n {
                if k == i || k == j || k < j {
                    // `k < j` would double-count the unordered envelope pair
                    // {j, k}: the same vertex arises with anchors j and k.
                    continue;
                }
                let Some(bk) = &bis_curves[k] else { continue };
                for theta in gi.intersect_angles(bk) {
                    let t = gi.radial_or_inf(theta);
                    if !t.is_finite() {
                        continue;
                    }
                    let v = centers[j] + Vector::from_angle(theta) * t;
                    let val = t + radii[j]; // Delta_j(v)
                    if validate(v, val) {
                        out.push(NonzeroVertex {
                            point: v,
                            kind: VertexKind::Breakpoint {
                                i: i as u32,
                                j: j as u32,
                                k: k as u32,
                            },
                        });
                    }
                }
            }
        }
    }
    out
}

/// Collapses coincident vertices (within `snap` distance) and returns the
/// distinct count — the quantity the complexity theorems bound.
pub fn count_distinct(vertices: &[NonzeroVertex], snap: f64) -> usize {
    let mut grid: std::collections::HashMap<(i64, i64), Vec<Point>> = Default::default();
    let mut count = 0usize;
    for v in vertices {
        let key = (
            ((v.point.x / snap).round() as i64).clamp(i64::MIN / 4, i64::MAX / 4),
            ((v.point.y / snap).round() as i64).clamp(i64::MIN / 4, i64::MAX / 4),
        );
        let mut dup = false;
        'scan: for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(pts) = grid.get(&(key.0 + dx, key.1 + dy)) {
                    if pts.iter().any(|p| p.dist2(v.point) <= snap * snap) {
                        dup = true;
                        break 'scan;
                    }
                }
            }
        }
        if !dup {
            count += 1;
            grid.entry(key).or_default().push(v.point);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_disks(n: usize, seed: u64, rmax: f64) -> Vec<Disk> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Disk::new(
                    Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)),
                    rng.random_range(0.5..rmax),
                )
            })
            .collect()
    }

    /// Brute-force validation of the vertex conditions.
    fn check_vertex(disks: &[Disk], v: &NonzeroVertex) {
        let p = v.point;
        let delta = |i: u32| disks[i as usize].min_dist(p);
        let cap = |i: u32| disks[i as usize].max_dist(p);
        let min_cap = disks
            .iter()
            .map(|d| d.max_dist(p))
            .fold(f64::INFINITY, f64::min);
        let tol = 1e-6 * (1.0 + min_cap);
        match v.kind {
            VertexKind::Crossing { i, j, k } => {
                assert!((delta(i) - cap(k)).abs() < tol, "delta_i != Delta_k");
                assert!((delta(j) - cap(k)).abs() < tol, "delta_j != Delta_k");
                assert!((cap(k) - min_cap).abs() < tol, "Delta_k not the envelope");
            }
            VertexKind::Breakpoint { i, j, k } => {
                assert!((delta(i) - cap(j)).abs() < tol, "delta_i != Delta_j");
                assert!((cap(j) - cap(k)).abs() < tol, "Delta_j != Delta_k");
                assert!((cap(j) - min_cap).abs() < tol, "Delta_j not the envelope");
            }
        }
    }

    #[test]
    fn all_vertices_satisfy_defining_equations() {
        let disks = random_disks(10, 70, 4.0);
        let verts = nonzero_vertices(&disks, 1e-9);
        assert!(!verts.is_empty());
        for v in &verts {
            check_vertex(&disks, v);
        }
    }

    #[test]
    fn no_vertices_for_tiny_inputs() {
        assert!(nonzero_vertices(&[], 1e-9).is_empty());
        let one = [Disk::new(Point::ORIGIN, 1.0)];
        assert!(nonzero_vertices(&one, 1e-9).is_empty());
        let two = [
            Disk::new(Point::ORIGIN, 1.0),
            Disk::new(Point::new(10.0, 0.0), 1.0),
        ];
        assert!(nonzero_vertices(&two, 1e-9).is_empty());
    }

    #[test]
    fn three_symmetric_disks() {
        // Three unit disks at the corners of a large equilateral triangle:
        // by symmetry, gamma curves cross pairwise and breakpoints exist.
        let h = 3.0f64.sqrt() / 2.0;
        let disks = [
            Disk::new(Point::new(0.0, 0.0), 1.0),
            Disk::new(Point::new(20.0, 0.0), 1.0),
            Disk::new(Point::new(10.0, 20.0 * h), 1.0),
        ];
        let verts = nonzero_vertices(&disks, 1e-9);
        for v in &verts {
            check_vertex(&disks, v);
        }
        // The centroid region: all three gammas pass near the circumcenter;
        // with n = 3 every crossing of gamma_i and gamma_j is realized by the
        // third disk. Expect at least one crossing vertex per pair.
        let crossings = verts
            .iter()
            .filter(|v| matches!(v.kind, VertexKind::Crossing { .. }))
            .count();
        assert!(crossings >= 3, "expected >= 3 crossings, got {crossings}");
    }

    #[test]
    fn vertices_match_envelope_membership_transitions() {
        // Consistency with GammaCurve: each crossing vertex must lie on both
        // gamma_i and gamma_j as computed by the envelope machinery.
        let disks = random_disks(8, 71, 3.0);
        let gammas: Vec<crate::gamma::GammaCurve> = (0..disks.len())
            .map(|i| crate::gamma::GammaCurve::build(&disks, i))
            .collect();
        let verts = nonzero_vertices(&disks, 1e-9);
        for v in &verts {
            if let VertexKind::Crossing { i, j, .. } = v.kind {
                for idx in [i, j] {
                    let g = &gammas[idx as usize];
                    let rel = v.point - g.center;
                    let t = rel.norm();
                    let env = g.radial(rel.angle());
                    assert!(
                        (t - env).abs() < 1e-6 * (1.0 + t),
                        "vertex not on envelope: t={t} env={env}"
                    );
                }
            }
        }
    }

    #[test]
    fn count_distinct_dedups() {
        let p = Point::new(1.0, 1.0);
        let vs = vec![
            NonzeroVertex {
                point: p,
                kind: VertexKind::Crossing { i: 0, j: 1, k: 2 },
            },
            NonzeroVertex {
                point: Point::new(1.0 + 1e-12, 1.0),
                kind: VertexKind::Crossing { i: 0, j: 1, k: 3 },
            },
            NonzeroVertex {
                point: Point::new(5.0, 5.0),
                kind: VertexKind::Breakpoint { i: 0, j: 1, k: 2 },
            },
        ];
        assert_eq!(count_distinct(&vs, 1e-9), 2);
    }
}
