//! The guaranteed Voronoi diagram (`[SE08]`, discussed in the paper's §1.2).
//!
//! `P_i` is the *guaranteed* nearest neighbor of `q` when it is the NN in
//! every instantiation: `Δ_i(q) < δ_j(q)` for all `j ≠ i` — equivalently,
//! `NN≠0(q) = {P_i}`. The cells of the guaranteed Voronoi diagram are
//! exactly the singleton cells of `𝒱≠0(𝒫)`, and `[SE08]` shows their total
//! complexity is only `O(n)` (in contrast to the `Θ(n³)` of the full
//! diagram); inside such a cell `π_i(q) = 1`.
//!
//! Queries reuse the two-stage machinery: stage 1 finds the *minimizer* of
//! `Δ`, stage 2 verifies no other support comes closer.

use unn_geom::{Disk, Point};
use unn_spatial::KdTree;

/// Index answering guaranteed-NN queries over disk supports.
#[derive(Clone, Debug)]
pub struct GuaranteedNnIndex {
    disks: Vec<Disk>,
    /// Tree over centers with aux = radius (same layout as the two-stage
    /// `NN≠0` index: stage-2 pruning uses `δ_i >= d(q, c_i) - r_i`).
    tree: KdTree,
}

impl GuaranteedNnIndex {
    /// Builds the index.
    pub fn new(disks: &[Disk]) -> Self {
        let centers: Vec<Point> = disks.iter().map(|d| d.center).collect();
        let radii: Vec<f64> = disks.iter().map(|d| d.radius).collect();
        GuaranteedNnIndex {
            disks: disks.to_vec(),
            tree: KdTree::with_aux(&centers, &radii),
        }
    }

    /// Number of uncertain points.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// The guaranteed nearest neighbor of `q`, if one exists: the unique
    /// `i` with `Δ_i(q) < δ_j(q)` for every `j ≠ i`.
    pub fn guaranteed_nn(&self, q: Point) -> Option<usize> {
        let disks = &self.disks;
        // Candidate: only the Δ-minimizer can be guaranteed.
        let (best, cap) = self.tree.min_adjusted(q, &|i| disks[i].max_dist(q))?;
        // Verify: no other disk's minimum distance is <= cap.
        let mut violated = false;
        // Threshold just above cap so that exact ties (δ_j == cap) are
        // reported and counted as violations, matching the strict
        // `Δ_i < δ_j` definition.
        self.tree.report_adjusted_below(
            q,
            cap.next_up(),
            &|i| disks[i].min_dist(q),
            &mut |i, v| {
                if i != best && v <= cap {
                    violated = true;
                }
            },
        );
        (!violated).then_some(best)
    }

    /// Reference linear-scan implementation.
    pub fn guaranteed_nn_naive(&self, q: Point) -> Option<usize> {
        let n = self.disks.len();
        (0..n).find(|&i| {
            let cap = self.disks[i].max_dist(q);
            (0..n).all(|j| j == i || self.disks[j].min_dist(q) > cap)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twostage::DiskNonzeroIndex;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_disks(n: usize, seed: u64) -> Vec<Disk> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Disk::new(
                    Point::new(rng.random_range(-40.0..40.0), rng.random_range(-40.0..40.0)),
                    rng.random_range(0.3..2.0),
                )
            })
            .collect()
    }

    #[test]
    fn matches_naive_and_singleton_nonzero() {
        let disks = random_disks(40, 500);
        let gidx = GuaranteedNnIndex::new(&disks);
        let nidx = DiskNonzeroIndex::new(&disks);
        let mut rng = SmallRng::seed_from_u64(501);
        let mut guaranteed_hits = 0;
        for _ in 0..500 {
            let q = Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0));
            let g = gidx.guaranteed_nn(q);
            assert_eq!(g, gidx.guaranteed_nn_naive(q), "q = {q:?}");
            // Guaranteed <=> singleton NN!=0 (strict inequalities on both
            // sides; ties are measure-zero for random queries).
            let nz = nidx.query(q);
            match g {
                Some(i) => {
                    assert_eq!(nz, vec![i], "q = {q:?}");
                    guaranteed_hits += 1;
                }
                None => assert!(
                    nz.len() != 1 || {
                        // A singleton cell with delta_j == cap exactly — accept.
                        let i = nz[0];
                        let cap = disks[i].max_dist(q);
                        disks
                            .iter()
                            .enumerate()
                            .any(|(j, d)| j != i && (d.min_dist(q) - cap).abs() < 1e-12)
                    }
                ),
            }
        }
        // Sparse disks: most queries should have a guaranteed NN.
        assert!(guaranteed_hits > 300, "only {guaranteed_hits} guaranteed");
    }

    #[test]
    fn overlapping_disks_never_guaranteed() {
        // Two overlapping disks: no query has a guaranteed NN among them
        // when both are candidates.
        let disks = vec![
            Disk::new(Point::new(0.0, 0.0), 2.0),
            Disk::new(Point::new(1.0, 0.0), 2.0),
        ];
        let idx = GuaranteedNnIndex::new(&disks);
        for x in [-5.0, -1.0, 0.5, 2.0, 6.0] {
            assert_eq!(idx.guaranteed_nn(Point::new(x, 0.0)), None, "x = {x}");
        }
    }

    #[test]
    fn far_query_guarantees_nothing_between_equals() {
        // Symmetric pair, query on the bisector: never guaranteed.
        let disks = vec![
            Disk::new(Point::new(-5.0, 0.0), 1.0),
            Disk::new(Point::new(5.0, 0.0), 1.0),
        ];
        let idx = GuaranteedNnIndex::new(&disks);
        assert_eq!(idx.guaranteed_nn(Point::new(0.0, 3.0)), None);
        // Close to one disk: guaranteed.
        assert_eq!(idx.guaranteed_nn(Point::new(-5.0, 0.5)), Some(0));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(
            GuaranteedNnIndex::new(&[]).guaranteed_nn(Point::ORIGIN),
            None
        );
        let one = GuaranteedNnIndex::new(&[Disk::new(Point::ORIGIN, 1.0)]);
        assert_eq!(one.guaranteed_nn(Point::new(9.0, 0.0)), Some(0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_guaranteed_matches_naive(
            seed in 0u64..2000, qx in -50.0f64..50.0, qy in -50.0f64..50.0,
        ) {
            let disks = random_disks(15, seed);
            let idx = GuaranteedNnIndex::new(&disks);
            let q = Point::new(qx, qy);
            prop_assert_eq!(idx.guaranteed_nn(q), idx.guaranteed_nn_naive(q));
        }
    }
}
