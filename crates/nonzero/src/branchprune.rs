//! R-tree branch-and-prune `NN≠0` queries — the `[CKP04]` baseline.
//!
//! The paper's related work (§1.2) contrasts its structures with the
//! R-tree-based branch-and-prune of `[CKP04]` (and the R-tree + nonzero
//! Voronoi hybrid of `[ZCM⁺13]`), noting those methods "do not provide any
//! nontrivial performance guarantees". This module implements that baseline
//! faithfully so experiment E14 can quantify the comparison:
//!
//! 1. **filter**: over support bounding boxes in an R-tree, find the
//!    smallest box max-distance and report boxes whose min-distance beats
//!    it — a superset of `NN≠0(q)`;
//! 2. **refine**: test each survivor with the exact `δ_i`/`Δ_j` of its
//!    actual support.

use unn_geom::{Aabb, Disk, Point};
use unn_spatial::RTree;

/// Branch-and-prune `NN≠0` index over disk supports (`[CKP04]` style).
#[derive(Clone, Debug)]
pub struct BranchPruneIndex {
    disks: Vec<Disk>,
    tree: RTree,
}

impl BranchPruneIndex {
    /// Builds the R-tree over the disks' bounding boxes.
    pub fn new(disks: &[Disk]) -> Self {
        let boxes: Vec<Aabb> = disks
            .iter()
            .map(|d| {
                Aabb::new(
                    Point::new(d.center.x - d.radius, d.center.y - d.radius),
                    Point::new(d.center.x + d.radius, d.center.y + d.radius),
                )
            })
            .collect();
        BranchPruneIndex {
            disks: disks.to_vec(),
            tree: RTree::new(&boxes),
        }
    }

    /// Number of uncertain points.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// `NN≠0(q)`: filter on bounding boxes, refine with exact disk
    /// distances (identical output to `DiskNonzeroIndex::query`).
    pub fn query(&self, q: Point) -> Vec<usize> {
        if self.disks.is_empty() {
            return Vec::new();
        }
        // Filter phase: boxes are conservative for both δ (box min-dist ≤
        // disk min-dist) and Δ (box max-dist ≥ disk max-dist)… careful: the
        // *threshold* must over-estimate Δ(q), so compute it from the exact
        // disks over the box-filtered shortlist.
        let Some((_, box_cap)) = self.tree.min_max_dist(q) else {
            return Vec::new();
        };
        // Exact Δ(q) is at most box_cap (box max-dist ≥ disk max-dist), so
        // the Δ-minimizer's box min-dist ≤ its exact max-dist ≤ box_cap and
        // it survives the filter. The *runner-up* Δ (needed for the `j ≠ i`
        // quantifier, see DiskNonzeroIndex) may hide outside the shortlist,
        // so grow the filter threshold until it provably covers the
        // runner-up: any disk outside a threshold-t shortlist has
        // box-min-dist ≥ t and hence exact max-dist ≥ t.
        let mut t = box_cap;
        let (best, d1, d2) = loop {
            let mut shortlist: Vec<usize> = Vec::new();
            self.tree
                .report_min_below(q, t.next_up(), &mut |i, _| shortlist.push(i));
            let mut caps: Vec<(usize, f64)> = shortlist
                .iter()
                .map(|&i| (i, self.disks[i].max_dist(q)))
                .collect();
            caps.sort_by(|a, b| a.1.total_cmp(&b.1));
            let (best, d1) = caps[0];
            let d2 = caps.get(1).map_or(f64::INFINITY, |&(_, v)| v);
            if d2 <= t || d2 == f64::INFINITY {
                break (best, d1, d2);
            }
            t = d2;
        };
        // Second filter at the exact threshold.
        let mut out: Vec<usize> = Vec::new();
        self.tree
            .report_min_below(q, d1.max(d2).next_up(), &mut |i, _| {
                let threshold = if i == best { d2 } else { d1 };
                if self.disks[i].min_dist(q) < threshold {
                    out.push(i);
                }
            });
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twostage::DiskNonzeroIndex;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_disks(n: usize, seed: u64) -> Vec<Disk> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Disk::new(
                    Point::new(rng.random_range(-60.0..60.0), rng.random_range(-60.0..60.0)),
                    rng.random_range(0.3..3.0),
                )
            })
            .collect()
    }

    #[test]
    fn matches_two_stage_index() {
        let disks = random_disks(120, 1100);
        let bp = BranchPruneIndex::new(&disks);
        let kd = DiskNonzeroIndex::new(&disks);
        let mut rng = SmallRng::seed_from_u64(1101);
        for _ in 0..300 {
            let q = Point::new(rng.random_range(-70.0..70.0), rng.random_range(-70.0..70.0));
            assert_eq!(bp.query(q), kd.query(q), "q = {q:?}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(BranchPruneIndex::new(&[]).query(Point::ORIGIN).is_empty());
        let one = BranchPruneIndex::new(&[Disk::new(Point::ORIGIN, 1.0)]);
        assert_eq!(one.query(Point::new(10.0, 0.0)), vec![0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_equals_two_stage(
            seed in 0u64..4000, qx in -70.0f64..70.0, qy in -70.0f64..70.0,
        ) {
            let disks = random_disks(25, seed);
            let bp = BranchPruneIndex::new(&disks);
            let kd = DiskNonzeroIndex::new(&disks);
            let q = Point::new(qx, qy);
            prop_assert_eq!(bp.query(q), kd.query(q));
        }
    }
}
