//! # unn-nonzero — nonzero Voronoi diagrams and NN≠0 queries
//!
//! The paper's §2–3: given uncertain points with disk or discrete supports,
//! find all points with nonzero probability of being the nearest neighbor of
//! a query, and build/analyze the nonzero Voronoi diagram `𝒱≠0(𝒫)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apollonius;
pub mod branchprune;
pub mod compose;
pub mod discrete;
pub mod error;
pub mod gamma;
pub mod guaranteed;
pub mod linf;
pub mod lower_bounds;
pub mod subdivision;
pub mod twostage;
pub mod vertices;

pub use apollonius::ApolloniusDiagram;
pub use branchprune::BranchPruneIndex;
pub use compose::DeltaCompose;
pub use discrete::{
    count_distinct_discrete, discrete_nonzero_vertices, forbidden_region,
    DiscreteNonzeroSubdivision, DiscreteVertex,
};
pub use error::NonzeroError;
pub use gamma::{envelope, EnvArc, GammaCurve};
pub use guaranteed::GuaranteedNnIndex;
pub use linf::{l1_dist, linf_dist, linf_max_dist, linf_min_dist, LinfNonzeroIndex};
pub use lower_bounds::{
    collinear_quadratic, disjoint_disks, equal_radii_cubic, mixed_radii_cubic, LowerBoundInstance,
};
pub use subdivision::{NonzeroSubdivision, SubdivisionStats};
pub use twostage::{DiscreteNonzeroIndex, DiskNonzeroIndex};
pub use vertices::{count_distinct, nonzero_vertices, NonzeroVertex, VertexKind};
