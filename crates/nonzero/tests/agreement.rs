//! Cross-module agreement: the four independent `NN≠0` formulations —
//! Lemma 2.1 two-stage filtering (`twostage`), the γ-curve region test
//! (`gamma`), the additively-weighted Voronoi diagram (`apollonius`) and
//! the L∞ index (`linf`) — answer the same questions on inputs where their
//! models coincide, plus the `lower_bounds` instances feeding them.

use proptest::prelude::*;
use unn_geom::{Aabb, Disk, Point};
use unn_nonzero::{
    collinear_quadratic, ApolloniusDiagram, DiscreteNonzeroIndex, DiskNonzeroIndex, GammaCurve,
    LinfNonzeroIndex,
};

fn disks_from(raw: &[(f64, f64, f64)]) -> Vec<Disk> {
    raw.iter()
        .map(|&(x, y, r)| Disk::new(Point::new(x, y), r))
        .collect()
}

fn disk_strategy(n: usize) -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    collection::vec((-20.0f64..20.0, -20.0f64..20.0, 0.2f64..3.0), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 4: `q` lies strictly inside `γ_i` iff `P_i ∈ NN≠0(q)`. The
    /// γ-curve membership test and Lemma 2.1 two-stage filtering are
    /// independent implementations of the same predicate.
    #[test]
    fn gamma_membership_matches_twostage(
        raw in disk_strategy(8), qx in -25.0f64..25.0, qy in -25.0f64..25.0,
    ) {
        let disks = disks_from(&raw);
        let q = Point::new(qx, qy);
        let idx = DiskNonzeroIndex::new(&disks);
        let answer = idx.query(q);
        for i in 0..disks.len() {
            let inside = GammaCurve::build(&disks, i).contains(q);
            prop_assert_eq!(
                inside,
                answer.contains(&i),
                "disk {} at q={:?}: gamma says {}, twostage says {}",
                i, q, inside, answer.contains(&i)
            );
        }
    }

    /// The Apollonius diagram's weighted NN is the stage-1 minimizer: its
    /// distance equals `Δ(q) = min_i max_dist(q, D_i)` from the two-stage
    /// index, the winner's cell contains `q`, and the winner is always in
    /// the nonzero answer set.
    #[test]
    fn apollonius_winner_matches_twostage_stage1(
        raw in disk_strategy(8), qx in -25.0f64..25.0, qy in -25.0f64..25.0,
    ) {
        let disks = disks_from(&raw);
        let q = Point::new(qx, qy);
        let apo = ApolloniusDiagram::build(&disks);
        let (winner, delta) = apo.weighted_nn(q).unwrap();
        let idx = DiskNonzeroIndex::new(&disks);
        prop_assert!((delta - idx.min_max_dist(q).unwrap()).abs() <= 1e-9 * delta.max(1.0));
        prop_assert!(apo.cell_contains(winner, q));
        prop_assert!(
            idx.query(q).contains(&winner),
            "weighted NN {} missing from nonzero set", winner
        );
    }

    /// On collinear instances (intervals on the x-axis, queried from the
    /// axis) the L∞ and L2 models coincide: degenerate-height rectangles
    /// have the same min/max distances as the disks, so `LinfNonzeroIndex`
    /// and `DiskNonzeroIndex` must return identical answer sets — and
    /// `DiscreteNonzeroIndex` on the two-endpoint supports agrees wherever
    /// the query is outside every interval (there the nearest/farthest
    /// support point realizes the interval min/max).
    #[test]
    fn collinear_linf_l2_discrete_agree(
        raw in collection::vec((-20.0f64..20.0, 0.2f64..1.5), 8),
        qx in -25.0f64..25.0,
    ) {
        let disks: Vec<Disk> = raw.iter().map(|&(x, r)| Disk::new(Point::new(x, 0.0), r)).collect();
        let rects: Vec<Aabb> = raw
            .iter()
            .map(|&(x, r)| Aabb::new(Point::new(x - r, 0.0), Point::new(x + r, 0.0)))
            .collect();
        let q = Point::new(qx, 0.0);
        let l2 = DiskNonzeroIndex::new(&disks).query(q);
        let linf = LinfNonzeroIndex::new(&rects).query(q);
        prop_assert_eq!(&l2, &linf, "L2 vs Linf disagree at q={:?}", q);

        if raw.iter().all(|&(x, r)| (qx - x).abs() > r + 1e-9) {
            let supports: Vec<Vec<Point>> = raw
                .iter()
                .map(|&(x, r)| vec![Point::new(x - r, 0.0), Point::new(x + r, 0.0)])
                .collect();
            let discrete = DiscreteNonzeroIndex::new(&supports).query(q);
            prop_assert_eq!(&l2, &discrete, "L2 vs discrete disagree at q={:?}", q);
        }
    }

    /// Both two-stage indexes agree with their own naive Lemma 2.1 scans —
    /// the kd-accelerated candidate generation loses nobody.
    #[test]
    fn twostage_matches_naive(
        raw in disk_strategy(10), qx in -25.0f64..25.0, qy in -25.0f64..25.0,
    ) {
        let disks = disks_from(&raw);
        let q = Point::new(qx, qy);
        let idx = DiskNonzeroIndex::new(&disks);
        prop_assert_eq!(idx.query(q), idx.query_naive(q));
        let supports: Vec<Vec<Point>> = raw
            .iter()
            .map(|&(x, y, r)| vec![Point::new(x - r, y), Point::new(x + r, y), Point::new(x, y + r)])
            .collect();
        let didx = DiscreteNonzeroIndex::new(&supports);
        prop_assert_eq!(didx.query(q), didx.query_naive(q));
    }
}

/// The quadratic lower-bound construction really exercises the agreement:
/// on `collinear_quadratic(m)` every formulation sees the same answer sets
/// at off-axis probes.
#[test]
fn lower_bound_instance_agreement() {
    let inst = collinear_quadratic(6);
    let idx = DiskNonzeroIndex::new(&inst.disks);
    let apo = ApolloniusDiagram::build(&inst.disks);
    for k in 0..40 {
        let q = Point::new(-3.0 + 0.37 * k as f64, 1.0 + 0.11 * k as f64);
        let answer = idx.query(q);
        assert_eq!(answer, idx.query_naive(q));
        for i in 0..inst.disks.len() {
            assert_eq!(
                GammaCurve::build(&inst.disks, i).contains(q),
                answer.contains(&i),
                "gamma vs twostage at q={q:?}, i={i}"
            );
        }
        let (winner, delta) = apo.weighted_nn(q).unwrap();
        assert!((delta - idx.min_max_dist(q).unwrap()).abs() <= 1e-9);
        assert!(answer.contains(&winner));
    }
}
