//! Deterministic transport fault injection.
//!
//! [`ChaosDuplex`] wraps any [`Duplex`] and applies a *scripted* fault to
//! each write, in order — no RNG inside the transport, so every chaos test
//! replays exactly. Faults act on the raw framed bytes, which is where
//! real networks corrupt: a truncated or dropped write leaves the peer
//! waiting (a read timeout downstream), a flipped bit turns into a decoder
//! rejection, a split write exercises reassembly.

use crate::{Duplex, NetError};

/// What happens to one written byte-block (one framed message).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Pass through untouched.
    Deliver,
    /// Discard the bytes entirely.
    Drop,
    /// Deliver only the first `n` bytes.
    Truncate(usize),
    /// Flip bit `i` (of the framed bytes; out-of-range flips nothing).
    CorruptBit(usize),
    /// Deliver intact but charge `nanos` of modeled delay to the caller's
    /// deadline budget.
    Delay(u64),
    /// Deliver in two separate writes, split at byte `n` — exercises
    /// frame reassembly across chunk boundaries.
    SplitAt(usize),
}

/// A fault-injecting wrapper over any [`Duplex`]. Writes consume the next
/// fault in the script ([`FrameFault::Deliver`] once the script runs dry);
/// reads pass through.
pub struct ChaosDuplex<T> {
    inner: T,
    script: std::collections::VecDeque<FrameFault>,
    injected_nanos: u64,
}

impl<T: Duplex> ChaosDuplex<T> {
    /// Wraps `inner` with a per-write fault script.
    pub fn new(inner: T, script: impl IntoIterator<Item = FrameFault>) -> Self {
        Self {
            inner,
            script: script.into_iter().collect(),
            injected_nanos: 0,
        }
    }

    /// Appends more faults to the script.
    pub fn push_faults(&mut self, faults: impl IntoIterator<Item = FrameFault>) {
        self.script.extend(faults);
    }
}

impl<T: Duplex> Duplex for ChaosDuplex<T> {
    fn write(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        let fault = self.script.pop_front().unwrap_or(FrameFault::Deliver);
        match fault {
            FrameFault::Deliver => self.inner.write(bytes),
            FrameFault::Drop => Ok(()),
            FrameFault::Truncate(n) => self.inner.write(&bytes[..n.min(bytes.len())]),
            FrameFault::CorruptBit(i) => {
                let mut corrupted = bytes.to_vec();
                if let Some(byte) = corrupted.get_mut(i / 8) {
                    *byte ^= 1 << (i % 8);
                }
                self.inner.write(&corrupted)
            }
            FrameFault::Delay(nanos) => {
                self.injected_nanos = self.injected_nanos.saturating_add(nanos);
                self.inner.write(bytes)
            }
            FrameFault::SplitAt(n) => {
                let cut = n.min(bytes.len());
                self.inner.write(&bytes[..cut])?;
                self.inner.write(&bytes[cut..])
            }
        }
    }

    fn read_frame(&mut self) -> Result<Vec<u8>, NetError> {
        self.inner.read_frame()
    }

    fn take_injected_nanos(&mut self) -> u64 {
        std::mem::take(&mut self.injected_nanos).saturating_add(self.inner.take_injected_nanos())
    }
}
