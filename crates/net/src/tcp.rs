//! The `std::net` TCP transport: client stream and threaded server.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use unn_serve::Dispatcher;
use unn_wire::frame_split;

use crate::{Connection, Duplex, NetError, ServerConfig};

fn io_err(op: &'static str, e: std::io::Error) -> NetError {
    NetError::Io {
        op,
        message: e.to_string(),
    }
}

/// A client-side TCP byte stream with frame reassembly and a read timeout.
pub struct TcpDuplex {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TcpDuplex {
    /// Connects to `addr` with a read timeout of `read_timeout`.
    pub fn connect(addr: SocketAddr, read_timeout: Duration) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream
            .set_read_timeout(Some(read_timeout))
            .map_err(|e| io_err("set_read_timeout", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| io_err("set_nodelay", e))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }
}

impl Duplex for TcpDuplex {
    fn write(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(bytes).map_err(|e| io_err("write", e))
    }

    fn read_frame(&mut self) -> Result<Vec<u8>, NetError> {
        loop {
            if let Some((body, used)) = frame_split(&self.buf)? {
                let body = body.to_vec();
                self.buf.drain(..used);
                return Ok(body);
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::ConnectionClosed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err("read", e)),
            }
        }
    }
}

/// A connector closure for [`NetClient`](crate::NetClient): every dial
/// opens a fresh TCP connection to `addr`.
pub fn tcp_connector(
    addr: SocketAddr,
    read_timeout: Duration,
) -> impl FnMut() -> Result<Box<dyn Duplex>, NetError> + Send + 'static {
    move || Ok(Box::new(TcpDuplex::connect(addr, read_timeout)?) as Box<dyn Duplex>)
}

/// A threaded TCP server over a shared [`Dispatcher`]: one accept loop,
/// one thread per connection, each driving the same sans-io
/// [`Connection`] state machine the loopback transport uses.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting.
    pub fn bind(
        addr: impl ToSocketAddrs,
        dispatcher: Arc<Mutex<Dispatcher>>,
        cfg: ServerConfig,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", e))?;
        let local = listener.local_addr().map_err(|e| io_err("local_addr", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("set_nonblocking", e))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("unn-net-accept".into())
            .spawn(move || accept_loop(listener, dispatcher, cfg, flag))
            .map_err(|e| io_err("spawn", e))?;
        Ok(Self {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight connections to drain, and
    /// joins every server thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    dispatcher: Arc<Mutex<Dispatcher>>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let d = Arc::clone(&dispatcher);
                let flag = Arc::clone(&shutdown);
                let spawned = std::thread::Builder::new()
                    .name("unn-net-conn".into())
                    .spawn(move || serve_connection(stream, d, cfg, flag));
                match spawned {
                    Ok(handle) => workers.push(handle),
                    Err(_) => {
                        // Thread spawn failed (resource exhaustion): drop
                        // the connection rather than the whole server.
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        workers.retain(|h| !h.is_finished());
    }
    for handle in workers {
        let _ = handle.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    dispatcher: Arc<Mutex<Dispatcher>>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
) {
    let mut stream = stream;
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut conn = Connection::new(dispatcher, cfg);
    let mut out = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                conn.feed(&chunk[..n], &mut out);
                if !out.is_empty() {
                    if stream.write_all(&out).is_err() {
                        return;
                    }
                    out.clear();
                }
                if conn.is_dead() {
                    return;
                }
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
