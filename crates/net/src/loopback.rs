//! An in-memory duplex: the client end of a [`Connection`] with no socket.

use std::sync::{Arc, Mutex};

use unn_serve::Dispatcher;
use unn_wire::frame_split;

use crate::{Connection, Duplex, NetError, ServerConfig};

/// The client side of an in-memory connection to a server [`Connection`]
/// state machine. Writes feed the server synchronously; reads pop complete
/// frames off the server's output buffer. A lost request (dropped or
/// truncated by a chaos wrapper) surfaces as a read timeout, exactly like
/// a real socket — the client's retry machinery takes over from there.
pub struct LoopbackDuplex {
    conn: Connection,
    /// Server output bytes not yet consumed by the client.
    out: Vec<u8>,
}

impl LoopbackDuplex {
    /// A fresh in-memory connection to `dispatcher`.
    pub fn new(dispatcher: Arc<Mutex<Dispatcher>>, cfg: ServerConfig) -> Self {
        Self {
            conn: Connection::new(dispatcher, cfg),
            out: Vec::new(),
        }
    }

    /// A connector closure for [`NetClient`](crate::NetClient): every dial
    /// opens a fresh loopback connection to the same dispatcher.
    pub fn connector(
        dispatcher: Arc<Mutex<Dispatcher>>,
        cfg: ServerConfig,
    ) -> impl FnMut() -> Result<Box<dyn Duplex>, NetError> + Send + 'static {
        move || Ok(Box::new(LoopbackDuplex::new(Arc::clone(&dispatcher), cfg)) as Box<dyn Duplex>)
    }
}

impl Duplex for LoopbackDuplex {
    fn write(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.conn.feed(bytes, &mut self.out);
        Ok(())
    }

    fn read_frame(&mut self) -> Result<Vec<u8>, NetError> {
        match frame_split(&self.out) {
            Ok(Some((body, used))) => {
                let body = body.to_vec();
                self.out.drain(..used);
                Ok(body)
            }
            Ok(None) => {
                if self.conn.is_dead() {
                    Err(NetError::ConnectionClosed)
                } else {
                    // No reply buffered: the request never reached the
                    // server whole. A socket would block until its read
                    // timeout; the in-memory stand-in times out instantly.
                    Err(NetError::Io {
                        op: "read",
                        message: "timed out waiting for a reply".into(),
                    })
                }
            }
            Err(e) => Err(NetError::Wire(e)),
        }
    }
}
