//! The serving client: connection reuse, reconnect, retry with backoff,
//! and cross-wire deadline accounting.

use std::sync::Arc;

use unn_observe::Clock;
use unn_serve::{Reply, Request, RetryPolicy};
use unn_wire::{
    decode_frame, encode_frame, frame_bytes, ErrorCode, Frame, Hello, HelloAck, RequestBatch,
    ANY_EPOCH, WIRE_VERSION,
};

use crate::{Duplex, NetError};

/// Client tuning.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// The index epoch to demand in the handshake ([`ANY_EPOCH`] = accept
    /// whatever the server holds).
    pub expected_epoch: u64,
    /// Transport-level retry: each failed attempt burns one retry and
    /// charges its exponential backoff to the deadline budget — the same
    /// machinery the dispatcher uses shard-side.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            expected_epoch: ANY_EPOCH,
            retry: RetryPolicy::default(),
        }
    }
}

/// Always-on per-client transport totals (the observe-gated global
/// counters aggregate the same quantities process-wide).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Frames received.
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// Body bytes received.
    pub bytes_in: u64,
    /// Body bytes sent.
    pub bytes_out: u64,
    /// Reconnects after the initial connection.
    pub reconnects: u64,
    /// Request attempts that failed and were retried.
    pub retried_attempts: u64,
}

type Connector = Box<dyn FnMut() -> Result<Box<dyn Duplex>, NetError> + Send>;

/// A serving client over any [`Duplex`] transport.
///
/// The connector closure is invoked lazily on first use and again after
/// any transport failure — connection reuse with reconnect. Every
/// connection is handshaken before queries flow.
pub struct NetClient {
    connector: Connector,
    conn: Option<Box<dyn Duplex>>,
    server: Option<HelloAck>,
    cfg: ClientConfig,
    clock: Arc<dyn Clock + Send + Sync>,
    stats: ClientStats,
    ever_connected: bool,
}

impl NetClient {
    /// A client that dials through `connector`.
    pub fn new(
        connector: impl FnMut() -> Result<Box<dyn Duplex>, NetError> + Send + 'static,
        cfg: ClientConfig,
        clock: Arc<dyn Clock + Send + Sync>,
    ) -> Self {
        Self {
            connector: Box::new(connector),
            conn: None,
            server: None,
            cfg,
            clock,
            stats: ClientStats::default(),
            ever_connected: false,
        }
    }

    /// The server's handshake acknowledgement, once connected.
    pub fn server_info(&self) -> Option<HelloAck> {
        self.server
    }

    /// Transport totals so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Ensures a handshaken connection exists, dialing if needed.
    pub fn connect(&mut self) -> Result<HelloAck, NetError> {
        if self.conn.is_some() {
            if let Some(ack) = self.server {
                return Ok(ack);
            }
        }
        if self.ever_connected {
            self.stats.reconnects += 1;
            unn_observe::net_reconnect();
        }
        let mut conn = (self.connector)()?;
        let ack = match handshake(&mut conn, &self.cfg, &mut self.stats) {
            Ok(ack) => ack,
            Err(e) => {
                self.server = None;
                return Err(e);
            }
        };
        self.ever_connected = true;
        self.conn = Some(conn);
        self.server = Some(ack);
        Ok(ack)
    }

    /// Serves one batch with no deadline budget.
    pub fn serve(&mut self, requests: &[Request]) -> Result<Vec<Reply>, NetError> {
        self.serve_within(requests, u64::MAX)
    }

    /// Serves one batch within a deadline budget of `budget_nanos`.
    ///
    /// Each attempt sends the budget *remaining* — elapsed clock time plus
    /// modeled retry backoff plus transport-injected delay already
    /// subtracted — so the server's admission ladder sees the deadline the
    /// client actually has left, and its degraded answers stay honest
    /// across the wire. Transport failures retry on a fresh connection per
    /// [`ClientConfig::retry`]; handshake rejections do not.
    pub fn serve_within(
        &mut self,
        requests: &[Request],
        budget_nanos: u64,
    ) -> Result<Vec<Reply>, NetError> {
        let t0 = self.clock.now_nanos();
        let mut modeled_nanos = 0u64;
        let mut last_err = NetError::ConnectionClosed;
        for attempt in 0..=self.cfg.retry.max_retries {
            if attempt > 0 {
                self.stats.retried_attempts += 1;
                modeled_nanos = modeled_nanos.saturating_add(self.cfg.retry.backoff_nanos(attempt));
            }
            let elapsed = self
                .clock
                .now_nanos()
                .saturating_sub(t0)
                .saturating_add(modeled_nanos);
            if budget_nanos != u64::MAX && elapsed >= budget_nanos {
                return Err(NetError::BudgetExhausted { budget_nanos });
            }
            let remaining = if budget_nanos == u64::MAX {
                u64::MAX
            } else {
                budget_nanos - elapsed
            };
            match self.try_once(requests, remaining, &mut modeled_nanos) {
                Ok(replies) => return Ok(replies),
                Err(e) => {
                    // Any failed attempt invalidates the connection: the
                    // stream may hold half a frame, so reuse is unsafe.
                    self.conn = None;
                    self.server = None;
                    if !e.retryable() {
                        return Err(e);
                    }
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    fn try_once(
        &mut self,
        requests: &[Request],
        budget_nanos: u64,
        modeled_nanos: &mut u64,
    ) -> Result<Vec<Reply>, NetError> {
        self.connect()?;
        let Some(conn) = self.conn.as_mut() else {
            return Err(NetError::ConnectionClosed);
        };
        let batch = Frame::RequestBatch(RequestBatch {
            budget_nanos,
            requests: requests.to_vec(),
        });
        send_frame(conn.as_mut(), &batch, &mut self.stats)?;
        *modeled_nanos = modeled_nanos.saturating_add(conn.take_injected_nanos());
        let body = conn.read_frame()?;
        self.stats.frames_in += 1;
        self.stats.bytes_in += body.len() as u64;
        unn_observe::net_frame_in(body.len() as u64);
        match decode_frame(&body) {
            Ok(Frame::ReplyBatch(rb)) => {
                if rb.replies.len() != requests.len() {
                    return Err(NetError::Protocol {
                        what: format!(
                            "{} replies for {} requests",
                            rb.replies.len(),
                            requests.len()
                        ),
                    });
                }
                Ok(rb.replies)
            }
            Ok(Frame::Error(e)) => Err(NetError::Remote {
                code: e.code,
                detail: e.detail,
            }),
            Ok(other) => Err(NetError::Protocol {
                what: format!("unexpected {other:?} as reply"),
            }),
            Err(e) => {
                unn_observe::net_decode_error();
                Err(NetError::Wire(e))
            }
        }
    }
}

fn send_frame(
    conn: &mut dyn Duplex,
    frame: &Frame,
    stats: &mut ClientStats,
) -> Result<(), NetError> {
    let body = encode_frame(frame);
    stats.frames_out += 1;
    stats.bytes_out += body.len() as u64;
    unn_observe::net_frame_out(body.len() as u64);
    conn.write(&frame_bytes(&body))
}

fn handshake(
    conn: &mut Box<dyn Duplex>,
    cfg: &ClientConfig,
    stats: &mut ClientStats,
) -> Result<HelloAck, NetError> {
    let hello = Frame::Hello(Hello {
        version: WIRE_VERSION,
        expected_epoch: cfg.expected_epoch,
    });
    send_frame(conn.as_mut(), &hello, stats)?;
    let body = conn.read_frame()?;
    stats.frames_in += 1;
    stats.bytes_in += body.len() as u64;
    unn_observe::net_frame_in(body.len() as u64);
    match decode_frame(&body) {
        Ok(Frame::HelloAck(ack)) => Ok(ack),
        Ok(Frame::Error(e)) => {
            if e.code == ErrorCode::VersionMismatch {
                unn_observe::net_version_mismatch();
            }
            Err(NetError::Handshake {
                code: e.code,
                ours: e.ours,
                theirs: e.theirs,
                detail: e.detail,
            })
        }
        Ok(other) => Err(NetError::Protocol {
            what: format!("unexpected {other:?} as handshake ack"),
        }),
        Err(e) => {
            unn_observe::net_decode_error();
            Err(NetError::Wire(e))
        }
    }
}
