//! Fault-tolerant network transport for the uncertain-NN serving tier.
//!
//! The transport layers `unn-wire`'s versioned binary protocol over three
//! interchangeable byte streams, all speaking to the same sans-io server
//! state machine:
//!
//! * [`NetServer`] / [`TcpDuplex`] — a `std::net` TCP server (threaded
//!   accept loop over a shared [`Dispatcher`](unn_serve::Dispatcher)) and
//!   the matching client stream with read timeouts.
//! * [`LoopbackDuplex`] — an in-memory duplex that feeds the *same*
//!   [`Connection`] state machine the TCP threads run, so the whole
//!   protocol stack is testable deterministically without sockets. The
//!   acceptance bar: loopback replies are **bit-identical** to in-process
//!   `Dispatcher::serve` calls.
//! * [`ChaosDuplex`] — a deterministic fault injector over any duplex:
//!   scripted per-write [`FrameFault`]s drop, truncate, corrupt, delay, or
//!   split frames, with no RNG inside the transport.
//!
//! [`NetClient`] owns connection reuse and reconnect: transport-level
//! failures (I/O errors, lost replies, malformed frames) burn a retry from
//! the same [`RetryPolicy`](unn_serve::RetryPolicy) machinery the
//! dispatcher uses shard-side, with exponential backoff charged to the
//! query budget. Deadlines cross the wire as *remaining-budget
//! nanoseconds*: each attempt sends `budget − elapsed` (elapsed includes
//! modeled backoff and chaos-injected delay), and the server clamps its
//! admission ladder to what is left — so degradation and shedding stay
//! honest end to end. Version or epoch mismatches rejected by the
//! handshake are **not** retried; they cannot heal by retrying.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod client;
mod conn;
mod loopback;
mod tcp;

pub use chaos::{ChaosDuplex, FrameFault};
pub use client::{ClientConfig, ClientStats, NetClient};
pub use conn::{Connection, ServerConfig};
pub use loopback::LoopbackDuplex;
pub use tcp::{tcp_connector, NetServer, TcpDuplex};

use std::fmt;

use unn_wire::{ErrorCode, WireError};

/// A byte-stream transport endpoint as the client sees it: raw writes in,
/// complete frame bodies out.
pub trait Duplex: Send {
    /// Writes raw stream bytes (already length-prefixed by the caller).
    fn write(&mut self, bytes: &[u8]) -> Result<(), NetError>;

    /// Reads the next complete frame body off the stream, blocking up to
    /// the transport's read timeout.
    fn read_frame(&mut self) -> Result<Vec<u8>, NetError>;

    /// Drains transport-injected delay (chaos faults) in modeled
    /// nanoseconds, charged to the caller's deadline budget.
    fn take_injected_nanos(&mut self) -> u64 {
        0
    }
}

/// Errors surfaced by the transport layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// An I/O operation failed (socket error, timeout, lost reply).
    Io {
        /// Which operation.
        op: &'static str,
        /// The underlying error, stringified.
        message: String,
    },
    /// A frame failed to encode or decode.
    Wire(WireError),
    /// The server rejected the handshake; not retryable.
    Handshake {
        /// Why.
        code: ErrorCode,
        /// Code-specific (server's version / epoch).
        ours: u64,
        /// Code-specific (our version / requested epoch).
        theirs: u64,
        /// Server-provided detail.
        detail: String,
    },
    /// The server reported an error after the handshake.
    Remote {
        /// Why.
        code: ErrorCode,
        /// Server-provided detail.
        detail: String,
    },
    /// The peer closed the connection.
    ConnectionClosed,
    /// The deadline budget ran out before a reply arrived.
    BudgetExhausted {
        /// The budget that was exhausted, in nanoseconds.
        budget_nanos: u64,
    },
    /// The peer sent a frame the protocol does not allow here.
    Protocol {
        /// What was unexpected.
        what: String,
    },
}

impl NetError {
    /// True when a retry on a fresh connection could plausibly succeed.
    /// Handshake rejections and an exhausted budget are permanent.
    pub fn retryable(&self) -> bool {
        match self {
            NetError::Io { .. }
            | NetError::Wire(_)
            | NetError::ConnectionClosed
            | NetError::Protocol { .. } => true,
            NetError::Remote { code, .. } => {
                matches!(code, ErrorCode::Malformed | ErrorCode::Internal)
            }
            NetError::Handshake { .. } | NetError::BudgetExhausted { .. } => false,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { op, message } => write!(f, "transport {op} failed: {message}"),
            NetError::Wire(e) => write!(f, "wire codec: {e}"),
            NetError::Handshake {
                code,
                ours,
                theirs,
                detail,
            } => write!(
                f,
                "handshake rejected ({code:?}, server {ours}, client {theirs}): {detail}"
            ),
            NetError::Remote { code, detail } => write!(f, "server error ({code:?}): {detail}"),
            NetError::ConnectionClosed => write!(f, "connection closed by peer"),
            NetError::BudgetExhausted { budget_nanos } => {
                write!(f, "deadline budget of {budget_nanos} ns exhausted")
            }
            NetError::Protocol { what } => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}
