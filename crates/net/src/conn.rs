//! The sans-io server connection state machine.
//!
//! [`Connection::feed`] consumes arbitrary byte chunks (frames may arrive
//! split or coalesced), reassembles complete frames, and appends the
//! server's response bytes to an output buffer. Both the TCP connection
//! threads and the in-memory [`LoopbackDuplex`](crate::LoopbackDuplex)
//! drive this same machine, so every protocol decision is tested without
//! sockets.

use std::sync::{Arc, Mutex};

use unn_serve::Dispatcher;
use unn_wire::{
    decode_frame, encode_frame, frame_bytes, frame_split, ErrorCode, ErrorFrame, Frame, Hello,
    HelloAck, ReplyBatch, ANY_EPOCH, WIRE_VERSION,
};

/// Server-side protocol configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerConfig {
    /// The index epoch this server's dispatcher snapshot was taken at;
    /// advertised in the handshake and checked against
    /// [`Hello::expected_epoch`].
    pub index_epoch: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    AwaitHello,
    Ready,
    Dead,
}

/// One server-side connection: a protocol stage, a reassembly buffer, and
/// a handle to the shared dispatcher.
pub struct Connection {
    dispatcher: Arc<Mutex<Dispatcher>>,
    cfg: ServerConfig,
    buf: Vec<u8>,
    stage: Stage,
}

impl Connection {
    /// A fresh connection awaiting its handshake.
    pub fn new(dispatcher: Arc<Mutex<Dispatcher>>, cfg: ServerConfig) -> Self {
        Self {
            dispatcher,
            cfg,
            buf: Vec::new(),
            stage: Stage::AwaitHello,
        }
    }

    /// True once a protocol violation has killed this connection; the
    /// transport should flush `out` and close.
    pub fn is_dead(&self) -> bool {
        self.stage == Stage::Dead
    }

    /// Consumes one chunk of stream bytes, appending any response bytes to
    /// `out`. Total: corrupt input kills the connection with a typed
    /// [`ErrorFrame`], never a panic.
    pub fn feed(&mut self, bytes: &[u8], out: &mut Vec<u8>) {
        if self.stage == Stage::Dead {
            return;
        }
        self.buf.extend_from_slice(bytes);
        loop {
            let (body, used) = match frame_split(&self.buf) {
                Ok(Some((body, used))) => (body.to_vec(), used),
                Ok(None) => return,
                Err(e) => {
                    // The frame boundary is lost; the stream cannot recover.
                    unn_observe::net_decode_error();
                    self.die(
                        out,
                        ErrorCode::Malformed,
                        0,
                        0,
                        &format!("unrecoverable length prefix: {e}"),
                    );
                    return;
                }
            };
            self.buf.drain(..used);
            unn_observe::net_frame_in(body.len() as u64);
            let frame = match decode_frame(&body) {
                Ok(frame) => frame,
                Err(e) => {
                    unn_observe::net_decode_error();
                    self.die(out, ErrorCode::Malformed, 0, 0, &format!("bad frame: {e}"));
                    return;
                }
            };
            self.handle(frame, out);
            if self.stage == Stage::Dead {
                return;
            }
        }
    }

    fn handle(&mut self, frame: Frame, out: &mut Vec<u8>) {
        match (self.stage, frame) {
            (Stage::AwaitHello, Frame::Hello(hello)) => self.handshake(hello, out),
            (Stage::Ready, Frame::RequestBatch(batch)) => {
                let replies = {
                    // A poisoned dispatcher lock only means another
                    // connection thread panicked mid-serve; the dispatcher's
                    // state is a well-formed snapshot, so heal and continue.
                    let mut d = self
                        .dispatcher
                        .lock()
                        .unwrap_or_else(|poison| poison.into_inner());
                    d.serve_with_deadline(&batch.requests, batch.budget_nanos)
                };
                emit(out, &Frame::ReplyBatch(ReplyBatch { replies }));
            }
            (Stage::AwaitHello, other) => {
                let what = frame_name(&other);
                self.die(
                    out,
                    ErrorCode::Malformed,
                    0,
                    0,
                    &format!("expected Hello, got {what}"),
                );
            }
            (Stage::Ready, other) => {
                let what = frame_name(&other);
                self.die(
                    out,
                    ErrorCode::Malformed,
                    0,
                    0,
                    &format!("unexpected {what} after handshake"),
                );
            }
            (Stage::Dead, _) => {}
        }
    }

    fn handshake(&mut self, hello: Hello, out: &mut Vec<u8>) {
        if hello.version != WIRE_VERSION {
            unn_observe::net_version_mismatch();
            self.die(
                out,
                ErrorCode::VersionMismatch,
                u64::from(WIRE_VERSION),
                u64::from(hello.version),
                "protocol version not supported",
            );
            return;
        }
        if hello.expected_epoch != ANY_EPOCH && hello.expected_epoch != self.cfg.index_epoch {
            self.die(
                out,
                ErrorCode::EpochMismatch,
                self.cfg.index_epoch,
                hello.expected_epoch,
                "index epoch not available",
            );
            return;
        }
        let (total_live, mc_rounds) = {
            let d = self
                .dispatcher
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            (d.total_live() as u64, d.mc_rounds() as u64)
        };
        emit(
            out,
            &Frame::HelloAck(HelloAck {
                version: WIRE_VERSION,
                index_epoch: self.cfg.index_epoch,
                total_live,
                mc_rounds,
            }),
        );
        self.stage = Stage::Ready;
    }

    fn die(&mut self, out: &mut Vec<u8>, code: ErrorCode, ours: u64, theirs: u64, detail: &str) {
        emit(
            out,
            &Frame::Error(ErrorFrame {
                code,
                ours,
                theirs,
                detail: detail.to_string(),
            }),
        );
        self.stage = Stage::Dead;
        self.buf.clear();
    }
}

fn emit(out: &mut Vec<u8>, frame: &Frame) {
    let body = encode_frame(frame);
    unn_observe::net_frame_out(body.len() as u64);
    out.extend_from_slice(&frame_bytes(&body));
}

fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello(_) => "Hello",
        Frame::HelloAck(_) => "HelloAck",
        Frame::RequestBatch(_) => "RequestBatch",
        Frame::ReplyBatch(_) => "ReplyBatch",
        Frame::Error(_) => "Error",
    }
}
