//! Churn driver: an arbitrary insert/remove interleaving against a plain
//! map mirror. The surviving corpora carry the layouts a static build
//! never produces — tombstone-shaped id gaps, re-inserted duplicates,
//! merge-history-dependent block shapes.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::dynamic::{DynamicPnnConfig, DynamicPnnIndex, PointId};
use unn_distr::Uncertain;
use unn_geom::Point;

/// Drives `ops` through a dynamic index and a plain map mirror; returns
/// both. `true` ops insert a fresh random disk (center `±20`, radius
/// `0.3..2.5`, drawn from a stream seeded by `seed`); `false` ops remove
/// the live id selected by the raw key (skipped when nothing is live).
///
/// # Panics
///
/// Panics if `config` is rejected or the index and mirror ever disagree
/// about liveness — both are harness bugs, not corpus properties.
pub fn churn(
    initial: usize,
    ops: &[(bool, u64)],
    seed: u64,
    config: DynamicPnnConfig,
) -> (DynamicPnnIndex, BTreeMap<PointId, Uncertain>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut index =
        DynamicPnnIndex::with_config(config).unwrap_or_else(|e| panic!("config rejected: {e}"));
    let mut mirror: BTreeMap<PointId, Uncertain> = BTreeMap::new();
    let fresh = |rng: &mut SmallRng| {
        Uncertain::uniform_disk(
            Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0)),
            rng.random_range(0.3..2.5),
        )
    };
    for _ in 0..initial {
        let p = fresh(&mut rng);
        let id = index.insert(p.clone());
        mirror.insert(id, p);
    }
    for &(is_insert, raw) in ops {
        if is_insert {
            let p = fresh(&mut rng);
            let id = index.insert(p.clone());
            mirror.insert(id, p);
        } else if !mirror.is_empty() {
            let keys: Vec<PointId> = mirror.keys().copied().collect();
            let victim = keys[(raw as usize) % keys.len()];
            assert!(index.remove(victim), "mirror says {victim} is live");
            mirror.remove(&victim);
        }
    }
    (index, mirror)
}

/// The live set surviving a [`churn`] run, in id order — the churned
/// corpus the spatial and quantify kernels are differentially tested on.
pub fn survivors(
    initial: usize,
    ops: &[(bool, u64)],
    seed: u64,
    config: DynamicPnnConfig,
) -> Vec<Uncertain> {
    churn(initial, ops, seed, config).1.into_values().collect()
}
