//! # unn-testkit — shared differential-test corpora and batteries
//!
//! The integration suites (`tests/kernel_equivalence.rs`,
//! `tests/dynamic_oracle.rs`, `tests/oracle.rs`,
//! `tests/precision_refinement.rs`, `tests/fault_injection.rs`) all probe
//! the same invariant from different angles: *every read path is a pure
//! function of the live point set* — batched vs scalar, dynamic vs fresh
//! static, f32-filtered vs exact f64. Before this crate each suite carried
//! its own copy of the corpus generators; a corpus hardened in one file
//! (denormals, 1e308 coordinates, churn-shaped id gaps) silently never
//! reached the others.
//!
//! This crate is the single home for that shared machinery:
//!
//! * [`corpus`] — seeded, named point/distribution corpora: duplicate-heavy
//!   random clouds, adversarial geometry (coincident, collinear, denormal,
//!   near-overflow), disk and discrete uncertain sets, aux-offset vectors,
//!   support boxes, and regime-spanning ball radii.
//! * [`churn`] — drives a [`unn::dynamic::DynamicPnnIndex`] through an
//!   arbitrary insert/remove interleaving against a map mirror, yielding
//!   the layouts a static build never produces.
//! * [`sig`] — the full read-path battery serialized into a flat word
//!   stream: two signatures are equal iff the two paths were bit-identical
//!   on every kernel.
//! * [`near_tie`] — [`NearTieForge`](near_tie::NearTieForge) manufactures
//!   instances whose f32 distances **tie** while their f64 distances
//!   differ, with the farther point at the lower id: the exact corner where
//!   an unwidened f32 admission gate returns the wrong neighbor.
//!
//! Everything is deterministic: generators take explicit seeds and derive
//! any internal streams from them, so a failing case replays from its seed
//! alone. The crate is test-support only — it never ships in a build of
//! the library crates, which must not depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod corpus;
pub mod near_tie;
pub mod sig;

pub use near_tie::{NearTieForge, NearTieInstance, NearTiePair};

/// Largest absolute componentwise difference between two equal-length
/// probability vectors — the metric every honesty bound is stated in.
///
/// # Panics
///
/// Panics if the slices have different lengths (a differential harness
/// comparing vectors of different shapes is already broken).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "comparing vectors of different lengths");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}
