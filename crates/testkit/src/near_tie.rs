//! [`NearTieForge`]: manufactured worst cases for the f32 filter tier.
//!
//! Each forged instance holds two points whose **f32 fill distances are
//! bit-equal** while their exact f64 distances differ, with the farther
//! point at the *lower* id — the configuration where any kernel that let
//! the f32 numbers answer (instead of merely reject) would return the
//! wrong neighbor under the id tie-break.
//!
//! The forge additionally pins the harder directed property: the shared
//! f32 value **rounds above the farther exact distance**
//! (`d_near < d_far < f64::from(d32)`). Probing `nearest_within` with the
//! threshold `t0 = d_far` therefore separates a widened gate from an
//! unwidened one *regardless of scan order*: both tied points pass the
//! exact gate (`d ≤ t0`), but both f32 distances exceed `t0`, so a filter
//! that compared `d32 ≤ t0` raw would reject the pair outright and answer
//! from the (far-away) fillers. Only the conservative widening band of
//! [`unn_spatial::f32_widened_threshold`] admits them into the exact f64
//! re-check that produces the true winner.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn_geom::Point;

/// One tied pair in isolation: the building block of
/// [`NearTieInstance`], also usable directly to stack several ties into a
/// single leaf (the mid-batch threshold-tightening regression corpus).
#[derive(Clone, Copy, Debug)]
pub struct NearTiePair {
    /// The farther tied point (exact f64 distance [`Self::d_far`]).
    pub far: Point,
    /// The exact-f64 nearer tied point.
    pub near: Point,
    /// Exact f64 distance of `far`; `d_near < d_far < f64::from(d32)`.
    pub d_far: f64,
    /// Exact f64 distance of `near`.
    pub d_near: f64,
    /// The shared f32 fill value both points produce.
    pub d32: f32,
}

/// One forged near-tie configuration (see the module docs).
#[derive(Clone, Debug)]
pub struct NearTieInstance {
    /// The corpus: `points[0]` is the decoy, `points[1]` the true nearest,
    /// the rest fillers at 2–8× the tie distance.
    pub points: Vec<Point>,
    /// The query the tie is staged at.
    pub query: Point,
    /// Index (= id) of the farther tied point — lower id, so an id
    /// tie-break over f32 distances would crown it.
    pub decoy: usize,
    /// Index (= id) of the exact-f64 nearest point.
    pub true_nearest: usize,
    /// Exact f64 distance of the true nearest (`Point::dist` sequence).
    pub d_near: f64,
    /// Exact f64 distance of the decoy; also the tight probe threshold
    /// `t0` for the order-independent directed test (`d_near < d_far <
    /// f64::from(d32)` holds by construction).
    pub d_far: f64,
    /// The shared f32 fill value both tied points produce.
    pub d32: f32,
}

/// The exact f64 distance operation sequence of `Point::dist`.
fn dist64(p: Point, q: Point) -> f64 {
    let dx = p.x - q.x;
    let dy = p.y - q.y;
    (dx * dx + dy * dy).sqrt()
}

/// The f32 filter pipeline: cast, subtract, square-sum, sqrt — the exact
/// operation sequence of the kernel's f32 fill phase.
fn dist32(p: Point, q: Point) -> f32 {
    let dx = p.x as f32 - q.x as f32;
    let dy = p.y as f32 - q.y as f32;
    (dx * dx + dy * dy).sqrt()
}

fn offset(q: Point, r: f64, theta: f64) -> Point {
    Point::new(q.x + r * theta.cos(), q.y + r * theta.sin())
}

/// Seeded generator of [`NearTieInstance`]s. Candidates are drawn with a
/// sub-f32-ulp relative gap and validated against the *realized* distance
/// pipelines, so every emitted instance provably carries the tie.
#[derive(Clone, Debug)]
pub struct NearTieForge {
    rng: SmallRng,
}

impl NearTieForge {
    /// A forge whose entire output stream is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed ^ 0x7165_F0F6),
        }
    }

    /// Forges one tied pair at roughly radius `r` around `query` (the
    /// realized invariants are validated, the radius is a target).
    ///
    /// # Panics
    ///
    /// Panics if rejection sampling fails to land a valid pair in
    /// 100 000 attempts — with the current gap distribution the expected
    /// attempt count is single-digit, so exhaustion means the generator
    /// itself regressed.
    pub fn forge_pair_at(&mut self, query: Point, r: f64) -> NearTiePair {
        for _ in 0..100_000 {
            // Relative gap well below one f32 ulp (1.19e-7): the f64
            // distances stay distinct, the f32 distances usually collide.
            let gap: f64 = self.rng.random_range(1e-10..3e-8);
            let far = offset(query, r, self.rng.random_range(0.0..std::f64::consts::TAU));
            let near = offset(
                query,
                r * (1.0 - gap),
                self.rng.random_range(0.0..std::f64::consts::TAU),
            );
            let (d_far, d_near) = (dist64(far, query), dist64(near, query));
            let (f_far, f_near) = (dist32(far, query), dist32(near, query));
            if !(d_near < d_far && d_far.is_finite()) {
                continue;
            }
            if f_far.to_bits() != f_near.to_bits() {
                continue; // cast noise split the tie — redraw
            }
            if f64::from(f_far) <= d_far {
                continue; // need the shared f32 value to round *up* past d_far
            }
            return NearTiePair {
                far,
                near,
                d_far,
                d_near,
                d32: f_far,
            };
        }
        panic!("NearTieForge failed to converge — generator parameters regressed");
    }

    /// Forges one instance with `fillers` extra far-away points.
    ///
    /// # Panics
    ///
    /// Panics under the same convergence condition as
    /// [`Self::forge_pair_at`].
    pub fn forge(&mut self, fillers: usize) -> NearTieInstance {
        let query = Point::new(
            self.rng.random_range(-8.0..8.0),
            self.rng.random_range(-8.0..8.0),
        );
        let r: f64 = self.rng.random_range(1.0..64.0);
        let pair = self.forge_pair_at(query, r);
        let mut points = vec![pair.far, pair.near];
        for _ in 0..fillers {
            let rr = self.rng.random_range(r * 2.0..r * 8.0);
            let p = offset(query, rr, self.rng.random_range(0.0..std::f64::consts::TAU));
            debug_assert!(dist64(p, query) > pair.d_far * 1.5);
            points.push(p);
        }
        NearTieInstance {
            points,
            query,
            decoy: 0,
            true_nearest: 1,
            d_near: pair.d_near,
            d_far: pair.d_far,
            d32: pair.d32,
        }
    }

    /// Forges a batch of `count` independent instances.
    pub fn forge_many(&mut self, count: usize, fillers: usize) -> Vec<NearTieInstance> {
        (0..count).map(|_| self.forge(fillers)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every forged instance really carries the advertised invariants —
    /// checked against the realized distance pipelines, not the targets.
    #[test]
    fn forged_instances_satisfy_their_contract() {
        let mut forge = NearTieForge::new(0xF0F6);
        for inst in forge.forge_many(32, 5) {
            let near = inst.points[inst.true_nearest];
            let far = inst.points[inst.decoy];
            assert!(inst.decoy < inst.true_nearest, "farther point has lower id");
            assert_eq!(dist64(near, inst.query), inst.d_near);
            assert_eq!(dist64(far, inst.query), inst.d_far);
            assert!(inst.d_near < inst.d_far, "f64 distances must differ");
            assert_eq!(
                dist32(near, inst.query).to_bits(),
                dist32(far, inst.query).to_bits(),
                "f32 distances must tie"
            );
            assert!(
                f64::from(inst.d32) > inst.d_far,
                "shared f32 value must round above d_far"
            );
            for (i, &p) in inst.points.iter().enumerate() {
                if i != inst.decoy && i != inst.true_nearest {
                    assert!(dist64(p, inst.query) > inst.d_far * 1.5, "filler too close");
                }
            }
        }
    }

    #[test]
    fn forge_is_deterministic_per_seed() {
        let a = NearTieForge::new(7).forge(3);
        let b = NearTieForge::new(7).forge(3);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
