//! Seeded corpus generators: every integration suite draws its point sets,
//! uncertain distributions, offsets, and thresholds from here, so a corpus
//! hardened for one suite immediately reaches the others.
//!
//! All generators are pure functions of their explicit arguments — the
//! same `(n, seed)` always yields the same corpus, byte for byte.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::DiscreteDistribution;
use unn_distr::Uncertain;
use unn_geom::{Aabb, AabbSoA, Point};

/// Duplicate-heavy random point cloud in `[-50, 50]²`: one in four points
/// copies an earlier one, because ties in distance and id order are where
/// batched/scalar (and f32/f64) divergence would hide.
pub fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    for _ in 0..n {
        if !pts.is_empty() && rng.random_range(0u32..4) == 0 {
            let j = rng.random_range(0u64..pts.len() as u64) as usize;
            pts.push(pts[j]);
        } else {
            pts.push(Point::new(
                rng.random_range(-50.0..50.0),
                rng.random_range(-50.0..50.0),
            ));
        }
    }
    pts
}

/// `m` random queries in `[-60, 60]²` plus one query *at* a stored point:
/// exact-zero distances and closed-ball boundary hits.
pub fn queries_for(m: usize, pts: &[Point], seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let mut qs: Vec<Point> = (0..m)
        .map(|_| Point::new(rng.random_range(-60.0..60.0), rng.random_range(-60.0..60.0)))
        .collect();
    qs.push(pts[pts.len() / 2]);
    qs
}

/// `m` uniform random queries in `[-half, half]²` (the free-standing query
/// stream of the oracle suites — no corpus anchor point).
pub fn query_points(m: usize, seed: u64, half: f64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..m)
        .map(|_| Point::new(rng.random_range(-half..half), rng.random_range(-half..half)))
        .collect()
}

/// Non-negative per-point offsets: `lo` feeds the min-side aux bounds
/// (weighted kernels, prune folds), `hi >= lo` the max side
/// (`report_ball_below` trees).
pub fn aux_offsets(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA07);
    let lo: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..3.0)).collect();
    let hi: Vec<f64> = lo.iter().map(|&l| l + rng.random_range(0.0..3.0)).collect();
    (lo, hi)
}

/// Per-point support boxes for the batched δ/Δ box kernel: the point
/// inflated by its `lo` offset (any finite non-negative halfwidth works;
/// tying it to `lo` keeps the corpus deterministic).
pub fn support_boxes(pts: &[Point], lo: &[f64]) -> AabbSoA {
    let boxes: Vec<Aabb> = pts
        .iter()
        .zip(lo)
        .map(|(p, &w)| Aabb::new(Point::new(p.x - w, p.y - w), Point::new(p.x + w, p.y + w)))
        .collect();
    AabbSoA::from_boxes(&boxes)
}

/// Ball radii / report thresholds spanning the interesting regimes:
/// empty-or-boundary (0), half the corpus (median distance), everything
/// (max distance — a closed-ball boundary hit by construction).
pub fn radii(pts: &[Point], q: Point) -> [f64; 3] {
    let mut ds: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
    ds.sort_by(f64::total_cmp);
    [0.0, ds[ds.len() / 2], ds[ds.len() - 1]]
}

/// The named adversarial point corpora: exact coincidence (ties
/// everywhere), large-offset collinear points (catastrophic cancellation),
/// denormal coordinates (gradual underflow), and near-`f64::MAX`
/// magnitudes (f32 overflow, squared-distance overflow).
pub fn adversarial() -> Vec<(&'static str, Vec<Point>)> {
    let p = Point::new;
    let mut coincident = vec![p(1.5, -2.5); 19];
    coincident.extend([p(1.5, -2.5000001), p(-4.0, 8.0), p(0.0, 0.0)]);
    let collinear: Vec<Point> = (0..40).map(|i| p(-1e6 + i as f64 * 3.7e4, 5.0)).collect();
    let tiny = [0.0, 5e-324, -5e-324, 1e-308, -1e-308, 2.5e-308, 4.9e-300];
    let mut denormal = Vec::new();
    for &x in &tiny {
        for &y in &tiny {
            denormal.push(p(x, y));
        }
    }
    let huge = vec![
        p(1e308, 1e308),
        p(-1e308, 1e308),
        p(1e308, -1e308),
        p(-1e308, -1e308),
        p(1e308, 0.0),
        p(0.0, -1e308),
        p(0.0, 0.0),
        p(1.0, 1.0),
        p(1e154, -1e154),
    ];
    vec![
        ("coincident", coincident),
        ("collinear", collinear),
        ("denormal", denormal),
        ("huge", huge),
    ]
}

/// Random uniform-disk uncertain points: centers in `[-20, 20]²`, radii in
/// `[r_lo, r_hi)`. The `(0.3, 2.5)` range is the kernel-equivalence /
/// churn corpus; fault injection uses `(0.5, 2.0)`.
pub fn uniform_disks(n: usize, seed: u64, r_lo: f64, r_hi: f64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Uncertain::uniform_disk(
                Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0)),
                rng.random_range(r_lo..r_hi),
            )
        })
        .collect()
}

/// `n` weighted discrete distributions of `k` support points each,
/// clustered around random centers in `[-25, 25]²` — the shared oracle
/// corpus every quantification path is judged on.
pub fn weighted_discrete(n: usize, k: usize, seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.random_range(-25.0..25.0);
            let cy: f64 = rng.random_range(-25.0..25.0);
            let pts: Vec<Point> = (0..k)
                .map(|_| {
                    Point::new(
                        cx + rng.random_range(-4.0..4.0),
                        cy + rng.random_range(-4.0..4.0),
                    )
                })
                .collect();
            let ws: Vec<f64> = (0..k).map(|_| rng.random_range(0.1..3.0)).collect();
            Uncertain::Discrete(
                DiscreteDistribution::new(pts, ws).unwrap_or_else(|e| panic!("corpus: {e}")),
            )
        })
        .collect()
}

/// `n` uniform discrete distributions of `k` support points each,
/// clustered tighter (`±2`) around centers in `[-20, 20]²` — the clean
/// half of the fault-injection corpus.
pub fn uniform_discrete(n: usize, k: usize, seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0));
            DiscreteDistribution::uniform(
                (0..k)
                    .map(|_| {
                        Point::new(
                            c.x + rng.random_range(-2.0..2.0),
                            c.y + rng.random_range(-2.0..2.0),
                        )
                    })
                    .collect(),
            )
            .map(Uncertain::Discrete)
            .unwrap_or_else(|e| panic!("corpus: {e}"))
        })
        .collect()
}
