//! Read-path signature battery: runs every kd-tree / forest query family
//! and serializes every observable output — ids, distance bits, visit
//! sequences, completion flags, fold outputs — into a flat word stream.
//! Two signatures are equal **iff** the two paths were bit-identical on
//! every kernel, which is exactly the claim the differential suites make
//! (batched vs scalar, f32-filtered vs f64, threaded vs sequential).

use unn_geom::{AabbSoA, Point};
use unn_nonzero::DeltaCompose;
use unn_spatial::{KdConfig, KdForest, KdTree, Neighbor};

use crate::corpus::radii;

/// Layout knobs under test: the shipped defaults, the scan-heavy arena
/// profile, and two degenerate shapes (single-point leaves with a real
/// tree descent, and mid-size leaves with a brute-force crossover) that
/// exercise partial lane batches and the flat-scan path.
pub fn configs() -> [KdConfig; 4] {
    [
        KdConfig::default(),
        KdConfig::scan_heavy(),
        KdConfig {
            leaf_size: 1,
            brute_force_below: 0,
            ..KdConfig::default()
        },
        KdConfig {
            leaf_size: 5,
            brute_force_below: 40,
            ..KdConfig::default()
        },
    ]
}

fn push_neighbor(sig: &mut Vec<u64>, n: Option<Neighbor>) {
    match n {
        Some(n) => {
            sig.push(1);
            sig.push(n.id as u64);
            sig.push(n.dist.to_bits());
        }
        None => sig.push(0),
    }
}

fn push_pair(sig: &mut Vec<u64>, v: Option<(usize, f64)>) {
    match v {
        Some((i, d)) => {
            sig.push(1);
            sig.push(i as u64);
            sig.push(d.to_bits());
        }
        None => sig.push(0),
    }
}

/// Runs the full read-path battery against one tree (nearest, m-nearest,
/// disk reports, capped reports, weighted minima, box minima, prune
/// folds) and serializes every observable output. `scalar` selects the
/// retained scalar-oracle twins of each kernel.
///
/// The one deliberate exception is `prune_with_cap`, whose batched walk is
/// allowed to skip contract-dead points: there the fold *outputs*
/// (`delta_min`, `prune_bound`, `cap_for`) enter the signature — never
/// visit counts.
pub fn kd_signature(
    tree: &KdTree,
    pts: &[Point],
    lo: &[f64],
    boxes: &AabbSoA,
    queries: &[Point],
    scalar: bool,
) -> Vec<u64> {
    let mut sig = Vec::new();
    for &q in queries {
        for init in [f64::INFINITY, 1.5] {
            let n = if scalar {
                tree.nearest_within_scalar(q, init)
            } else {
                tree.nearest_within(q, init)
            };
            push_neighbor(&mut sig, n);
        }
        let mut out: Vec<Neighbor> = Vec::new();
        for m in [1usize, 4, 33] {
            out.clear();
            if scalar {
                tree.m_nearest_into_scalar(q, m, &mut out);
            } else {
                tree.m_nearest_into(q, m, &mut out);
            }
            sig.push(out.len() as u64);
            for n in &out {
                sig.push(n.id as u64);
                sig.push(n.dist.to_bits());
            }
        }
        for r in radii(pts, q) {
            {
                let visit = &mut |i: usize, d: f64| {
                    sig.push(i as u64);
                    sig.push(d.to_bits());
                };
                if scalar {
                    tree.in_disk_scalar(q, r, visit);
                } else {
                    tree.in_disk(q, r, visit);
                }
            }
            sig.push(u64::MAX); // sequence terminator
            for cap in [0usize, 1, 5, usize::MAX] {
                let complete = {
                    let visit = &mut |i: usize, d: f64| {
                        sig.push(i as u64);
                        sig.push(d.to_bits());
                    };
                    if scalar {
                        tree.in_disk_capped_scalar(q, r, cap, visit)
                    } else {
                        tree.in_disk_capped(q, r, cap, visit)
                    }
                };
                sig.push(u64::MAX);
                sig.push(complete as u64);
            }
            {
                let visit = &mut |i: usize, d: f64| {
                    sig.push(i as u64);
                    sig.push(d.to_bits());
                };
                if scalar {
                    tree.report_ball_below_scalar(q, r, visit);
                } else {
                    tree.report_ball_below(q, r, visit);
                }
            }
            sig.push(u64::MAX);
        }
        for init in [f64::INFINITY, 2.0] {
            let v = if scalar {
                tree.min_adjusted_weighted_from_scalar(q, init)
            } else {
                tree.min_adjusted_weighted_from(q, init)
            };
            push_pair(&mut sig, v);
        }
        let two = if scalar {
            tree.min_two_adjusted_weighted_scalar(q)
        } else {
            tree.min_two_adjusted_weighted(q)
        };
        match two {
            Some((i, a, b)) => {
                sig.push(1);
                sig.push(i as u64);
                sig.push(a.to_bits());
                sig.push(b.to_bits());
            }
            None => sig.push(0),
        }
        let bx = if scalar {
            tree.min_adjusted_boxes_scalar(q, boxes)
        } else {
            tree.min_adjusted_boxes(q, boxes)
        };
        push_pair(&mut sig, bx);
        // Two fold starts: the canonical fresh fold under an infinite cap,
        // and a pre-seeded fold whose own prune_bound is the entry cap
        // (the shared-bound idiom from the dynamic read path).
        for preseed in [false, true] {
            let mut fold = DeltaCompose::new();
            if preseed {
                let r = radii(pts, q);
                fold.observe(r[1] + 1.0, u64::MAX);
                fold.observe(r[2] + 1.0, u64::MAX - 1);
            }
            let cap0 = fold.prune_bound();
            let visit = &mut |i: usize| {
                fold.observe(pts[i].dist(q) + lo[i], i as u64);
                fold.prune_bound()
            };
            let fin = if scalar {
                tree.prune_with_cap_scalar(q, cap0, visit)
            } else {
                tree.prune_with_cap(q, cap0, visit)
            };
            sig.push(fin.to_bits());
            sig.push(fold.delta_min().to_bits());
            sig.push(fold.prune_bound().to_bits());
            for id in 0..4u64 {
                sig.push(fold.cap_for(id).to_bits());
            }
        }
    }
    sig
}

/// The forest twin of [`kd_signature`]: nearest and m-nearest across every
/// round of the forest, batched or scalar.
pub fn forest_signature(forest: &KdForest, queries: &[Point], scalar: bool) -> Vec<u64> {
    let mut sig = Vec::new();
    let mut out: Vec<Neighbor> = Vec::new();
    for round in 0..forest.rounds() {
        for &q in queries {
            for init in [f64::INFINITY, 2.0] {
                let n = if scalar {
                    forest.nearest_within_scalar(round, q, init)
                } else {
                    forest.nearest_within(round, q, init)
                };
                push_neighbor(&mut sig, n);
            }
            for m in [1usize, 3] {
                out.clear();
                if scalar {
                    forest.m_nearest_into_scalar(round, q, m, &mut out);
                } else {
                    forest.m_nearest_into(round, q, m, &mut out);
                }
                sig.push(out.len() as u64);
                for n in &out {
                    sig.push(n.id as u64);
                    sig.push(n.dist.to_bits());
                }
            }
        }
    }
    sig
}
