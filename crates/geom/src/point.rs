//! Points and vectors in the plane.
//!
//! The whole workspace works in `f64` Cartesian coordinates. [`Point`] is a
//! location, [`Vector`] a displacement; the distinction keeps formulas
//! readable (e.g. `q - c` is a `Vector`, `c + v` is a `Point`).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the Euclidean plane.
#[derive(Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// x-coordinate.
    pub x: f64,
    /// y-coordinate.
    pub y: f64,
}

/// A displacement vector in the plane.
#[derive(Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vector {
    /// x-component.
    pub x: f64,
    /// y-component.
    pub y: f64,
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root).
    #[inline]
    pub fn dist2(self, other: Point) -> f64 {
        (self - other).norm2()
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Interprets the point as a vector from the origin.
    #[inline]
    pub fn to_vector(self) -> Vector {
        Vector::new(self.x, self.y)
    }

    /// `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vector {
    /// The zero vector.
    pub const ZERO: Vector = Vector { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// The unit vector in direction `theta` (radians, measured from +x axis).
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Vector::new(theta.cos(), theta.sin())
    }

    /// Euclidean norm.
    ///
    /// Computed as `sqrt(norm2())` (not `hypot`) so that distances compare
    /// consistently with squared distances everywhere in the workspace.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (`z`-component of the 3D cross product).
    #[inline]
    pub fn cross(self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Counter-clockwise perpendicular vector.
    #[inline]
    pub fn perp(self) -> Vector {
        Vector::new(-self.y, self.x)
    }

    /// Angle from the +x axis, in `(-pi, pi]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Normalized copy, or `None` if the norm is zero or not finite.
    #[inline]
    pub fn normalized(self) -> Option<Vector> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vector> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vector> for f64 {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: Vector) -> Vector {
        rhs * self
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

/// Total order on points by `(x, y)`; used by sweeps and canonicalization.
///
/// NaN coordinates are not meaningful inputs anywhere in this workspace; this
/// comparison treats them as equal to themselves via `total_cmp`.
#[inline]
pub fn lex_cmp(a: Point, b: Point) -> core::cmp::Ordering {
    a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_arithmetic_round_trips() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(4.0, 6.0);
        let v = q - p;
        assert_eq!(v, Vector::new(3.0, 4.0));
        assert_eq!(p + v, q);
        assert_eq!(q - v, p);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm2(), 25.0);
    }

    #[test]
    fn dist_and_midpoint() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(6.0, 8.0);
        assert_eq!(p.dist(q), 10.0);
        assert_eq!(p.dist2(q), 100.0);
        assert_eq!(p.midpoint(q), Point::new(3.0, 4.0));
        assert_eq!(p.lerp(q, 0.25), Point::new(1.5, 2.0));
    }

    #[test]
    fn dot_cross_perp() {
        let a = Vector::new(1.0, 0.0);
        let b = Vector::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.perp(), b);
    }

    #[test]
    fn from_angle_is_unit() {
        for k in 0..16 {
            let theta = k as f64 * core::f64::consts::TAU / 16.0;
            let u = Vector::from_angle(theta);
            assert!((u.norm() - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vector::ZERO.normalized().is_none());
        let v = Vector::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        use core::cmp::Ordering;
        let a = Point::new(0.0, 5.0);
        let b = Point::new(1.0, -5.0);
        let c = Point::new(0.0, 6.0);
        assert_eq!(lex_cmp(a, b), Ordering::Less);
        assert_eq!(lex_cmp(a, c), Ordering::Less);
        assert_eq!(lex_cmp(a, a), Ordering::Equal);
    }
}
