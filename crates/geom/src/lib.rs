//! # unn-geom — geometry substrate for uncertain nearest-neighbor search
//!
//! Self-contained computational-geometry building blocks used throughout the
//! `unn` workspace, implemented from scratch:
//!
//! * [`point`] — points, vectors, lexicographic order;
//! * [`expansion`] — exact floating-point expansion arithmetic;
//! * [`predicates`] — adaptive-precision `orient2d` / `incircle`;
//! * [`bbox`] — axis-aligned boxes with min/max-distance queries;
//! * [`kernels`] — batched SoA distance kernels, bit-identical to the
//!   scalar paths;
//! * [`angle`] — angular intervals and `a·cos t + b·sin t = c` solving;
//! * [`disk`] — disks, lens areas (uniform-disk distance cdf), tangencies;
//! * [`bisector`] — additively weighted bisector branches in focal polar
//!   form, the curve family of the paper's `𝒱≠0` machinery;
//! * [`segment`] — segments and lines with robust intersections;
//! * [`hull`] — convex hulls and farthest/nearest distance to point sets;
//! * [`polygon`] — convex polygons and half-plane intersection;
//! * [`arrangement`] — planar subdivisions induced by segment sets, with
//!   face extraction and point location.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angle;
pub mod arrangement;
pub mod bbox;
pub mod bisector;
pub mod circular;
pub mod disk;
pub mod expansion;
pub mod hull;
pub mod kernels;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod segment;

pub use angle::ArcInterval;
pub use arrangement::{Arrangement, FaceLocator};
pub use bbox::Aabb;
pub use bisector::FocalCurve;
pub use circular::circle_polygon_area;
pub use disk::Disk;
pub use kernels::AabbSoA;
pub use point::{Point, Vector};
pub use polygon::ConvexPolygon;
pub use predicates::{incircle, orient2d, orientation, Orientation};
pub use segment::{Line, SegIntersection, Segment};
