//! Additively weighted bisector curves in *focal polar form*.
//!
//! All curves arising in the nonzero Voronoi diagram of disks are loci of the
//! form
//!
//! ```text
//!     { x : d(x, F) - d(x, O) = s }
//! ```
//!
//! for two foci `O`, `F` and a signed shift `s` — one branch of a hyperbola
//! with foci `O` and `F` (a line when `s = 0`). Examples from the paper
//! (disks `D_i = (c_i, r_i)`):
//!
//! * `γ_ij = { x : δ_i(x) = Δ_j(x) }`, i.e. `d(x,c_i) - r_i = d(x,c_j) + r_j`
//!   — take `O = c_i`, `F = c_j`, `s = -(r_i + r_j)`.
//! * the additively-weighted bisector `{ x : Δ_j(x) = Δ_k(x) }`, i.e.
//!   `d(x,c_j) + r_j = d(x,c_k) + r_k` — take `O = c_j`, `F = c_k`,
//!   `s = r_j - r_k`.
//!
//! **Focal polar form.** Put the origin at `O` and write `x = O + t·u(θ)`
//! with `t >= 0`. Let `e = F - O`, `L = |e|`, `p = ⟨u(θ), e⟩`. Then
//! `d(x,F)^2 = t^2 - 2tp + L^2`, and squaring `d(x,F) = t + s` gives
//!
//! ```text
//!     t(θ) = (L² - s²) / (2 (s + p))        (requires s + p > 0)
//! ```
//!
//! so the curve is the graph of a *rational* radial function over the angular
//! window `{ θ : ⟨u(θ), e⟩ > -s }`, and **two such curves around the same
//! origin intersect where a linear equation in `u` holds** — at most two
//! angles, in closed form ([`FocalCurve::intersect_angles`]). This closed
//! form is what makes exact vertex enumeration of the nonzero Voronoi diagram
//! possible without iterative root finding (DESIGN.md §4).

use crate::angle::{norm_angle, solve_cos_sin, ArcInterval};
use crate::point::{Point, Vector};

/// One branch of an additively weighted bisector, in polar form around an
/// implicit origin focus `O`.
///
/// Represents `{ x : d(x, O + e) - d(x, O) = shift }` with `|shift| < |e|`
/// (otherwise the locus is empty or degenerate — see [`FocalCurve::new`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FocalCurve {
    /// Vector from the origin focus `O` to the other focus `F`.
    pub e: Vector,
    /// The signed shift `s = d(x,F) - d(x,O)` along the curve.
    pub shift: f64,
    /// Cached `|e|`.
    len: f64,
    /// Cached numerator `(L² - s²) / 2 > 0`.
    num: f64,
}

impl FocalCurve {
    /// Builds the curve, or `None` when the locus is empty or degenerate
    /// (`|shift| >= |e|`, including coincident foci).
    ///
    /// `shift = |e|` would be the ray from `F` away from `O`, and
    /// `shift = -|e|` the ray from `O` away from `F`; both are measure-zero
    /// degeneracies that the callers exclude by general-position perturbation.
    pub fn new(e: Vector, shift: f64) -> Option<Self> {
        let len = e.norm();
        // NaN-safe: reject non-finite shifts as well as |shift| >= |e|.
        if shift.is_nan() || shift.abs() >= len {
            return None;
        }
        Some(FocalCurve {
            e,
            shift,
            len,
            num: 0.5 * (len * len - shift * shift),
        })
    }

    /// `γ_ij` of the paper: the locus `δ_i(x) = Δ_j(x)` for disks
    /// `(c_i, r_i)`, `(c_j, r_j)`, in the polar frame of `c_i`.
    ///
    /// `None` when `d(c_i, c_j) <= r_i + r_j` (disks touch or overlap): then
    /// `δ_i < Δ_j` everywhere and the constraint never binds.
    #[inline]
    pub fn gamma(c_i: Point, r_i: f64, c_j: Point, r_j: f64) -> Option<Self> {
        FocalCurve::new(c_j - c_i, -(r_i + r_j))
    }

    /// The additively weighted bisector `{ x : d(x,c_j)+r_j = d(x,c_k)+r_k }`
    /// in the polar frame of `c_j`.
    #[inline]
    pub fn weighted_bisector(c_j: Point, r_j: f64, c_k: Point, r_k: f64) -> Option<Self> {
        FocalCurve::new(c_k - c_j, r_j - r_k)
    }

    /// The angular window over which the radial function is defined.
    #[inline]
    pub fn window(&self) -> ArcInterval {
        // Defined where cos(θ - angle(e)) > -shift / L.
        let half = (-self.shift / self.len).clamp(-1.0, 1.0).acos();
        ArcInterval::centered(self.e.angle(), half)
    }

    /// Radial value `t(θ)`, or `None` outside the angular window.
    #[inline]
    pub fn radial(&self, theta: f64) -> Option<f64> {
        let p = self.e.x * theta.cos() + self.e.y * theta.sin();
        let denom = self.shift + p;
        if denom <= 0.0 {
            return None;
        }
        Some(self.num / denom)
    }

    /// Radial value treating out-of-window angles as `+∞` (for envelopes).
    #[inline]
    pub fn radial_or_inf(&self, theta: f64) -> f64 {
        self.radial(theta).unwrap_or(f64::INFINITY)
    }

    /// The point of the curve at angle `theta`, given the origin focus `O`.
    #[inline]
    pub fn point_at(&self, origin: Point, theta: f64) -> Option<Point> {
        let t = self.radial(theta)?;
        Some(origin + Vector::from_angle(theta) * t)
    }

    /// Angle of the curve's axis (direction from `O` towards `F`), where the
    /// radial function attains its minimum.
    #[inline]
    pub fn axis_angle(&self) -> f64 {
        norm_angle(self.e.angle())
    }

    /// Minimum of the radial function (attained on the axis).
    #[inline]
    pub fn min_radial(&self) -> f64 {
        self.num / (self.shift + self.len)
    }

    /// Angles where two curves around the **same origin focus** intersect.
    ///
    /// Setting `num₁ / (s₁ + ⟨u,e₁⟩) = num₂ / (s₂ + ⟨u,e₂⟩)` and clearing
    /// denominators yields `⟨u, num₁·e₂ - num₂·e₁⟩ = num₂·s₁ - num₁·s₂`,
    /// linear in the unit vector `u` — at most two solutions, computed in
    /// closed form. Solutions are filtered to both curves' windows.
    pub fn intersect_angles(&self, other: &FocalCurve) -> Vec<f64> {
        let v = self.num * other.e - other.num * self.e;
        let c = other.num * self.shift - self.num * other.shift;
        let sols = solve_cos_sin(v.x, v.y, c);
        let mut out = Vec::with_capacity(2);
        for &t in sols.as_slice() {
            // Both denominators must be positive (same sign is guaranteed by
            // the cleared equation only up to a global sign).
            if self.radial(t).is_some() && other.radial(t).is_some() {
                out.push(t);
            }
        }
        out
    }

    /// Verifies that a point `x` (with origin focus at `origin`) satisfies
    /// the defining equation within `tol` — used by tests and vertex
    /// validation.
    pub fn residual(&self, origin: Point, x: Point) -> f64 {
        let f = origin + self.e;
        (x.dist(f) - x.dist(origin)) - self.shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::{PI, TAU};
    use proptest::prelude::*;

    #[test]
    fn gamma_empty_when_disks_overlap() {
        let c1 = Point::ORIGIN;
        let c2 = Point::new(3.0, 0.0);
        assert!(FocalCurve::gamma(c1, 2.0, c2, 2.0).is_none()); // touching: 3 <= 4
        assert!(FocalCurve::gamma(c1, 1.0, c2, 1.0).is_some()); // 3 > 2
    }

    #[test]
    fn gamma_on_axis_value() {
        // Disks (0,0; r=1) and (10,0; r=2). On the segment between them the
        // constraint d(x,c1) - 1 = d(x,c2) + 2 gives x = (10+3)/2 = 6.5 from
        // c1 along +x.
        let g = FocalCurve::gamma(Point::ORIGIN, 1.0, Point::new(10.0, 0.0), 2.0).unwrap();
        let t = g.radial(0.0).unwrap();
        assert!((t - 6.5).abs() < 1e-12, "t = {t}");
        assert!((g.min_radial() - 6.5).abs() < 1e-12);
        // Defining equation holds at an arbitrary in-window angle.
        let theta = 0.2;
        let x = g.point_at(Point::ORIGIN, theta).unwrap();
        assert!(g.residual(Point::ORIGIN, x).abs() < 1e-9);
        // delta_1(x) = |x| - 1 should equal Delta_2(x) = d(x, c2) + 2.
        let d1 = x.dist(Point::ORIGIN) - 1.0;
        let d2 = x.dist(Point::new(10.0, 0.0)) + 2.0;
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn window_half_angle() {
        // gamma: shift = -(r_i + r_j) = -3, L = 10: window half-angle
        // arccos(3/10).
        let g = FocalCurve::gamma(Point::ORIGIN, 1.0, Point::new(10.0, 0.0), 2.0).unwrap();
        let w = g.window();
        let expect = (0.3f64).acos();
        assert!((w.extent / 2.0 - expect).abs() < 1e-12);
        assert!(w.contains(0.0));
        assert!(!w.contains(PI));
        // Just inside/outside the boundary angle.
        assert!(g.radial(expect - 1e-6).is_some());
        assert!(g.radial(expect + 1e-6).is_none());
    }

    #[test]
    fn weighted_bisector_is_perpendicular_line_when_equal_radii() {
        // Equal radii: shift = 0, the "hyperbola" is the perpendicular
        // bisector line of the centers.
        let b =
            FocalCurve::weighted_bisector(Point::ORIGIN, 1.0, Point::new(4.0, 0.0), 1.0).unwrap();
        for &theta in &[0.0, 0.5, 1.0, -1.2] {
            if let Some(p) = b.point_at(Point::ORIGIN, theta) {
                assert!((p.x - 2.0).abs() < 1e-9, "p = {p:?}");
            }
        }
    }

    #[test]
    fn intersect_angles_shared_focus() {
        // Two gamma curves around the same origin disk vs two other disks.
        let o = Point::ORIGIN;
        let g1 = FocalCurve::gamma(o, 1.0, Point::new(10.0, 0.0), 1.0).unwrap();
        let g2 = FocalCurve::gamma(o, 1.0, Point::new(0.0, 10.0), 1.0).unwrap();
        let angles = g1.intersect_angles(&g2);
        assert!(!angles.is_empty());
        for &t in &angles {
            let r1 = g1.radial(t).unwrap();
            let r2 = g2.radial(t).unwrap();
            assert!((r1 - r2).abs() < 1e-9 * (1.0 + r1.abs()));
            // The intersection point satisfies both defining equations.
            let x = o + Vector::from_angle(t) * r1;
            assert!(g1.residual(o, x).abs() < 1e-8);
            assert!(g2.residual(o, x).abs() < 1e-8);
        }
        // Symmetric configuration: the intersection bisects the quadrant.
        assert!(angles
            .iter()
            .any(|&t| (norm_angle(t) - PI / 4.0).abs() < 1e-9));
    }

    proptest! {
        #[test]
        fn prop_radial_satisfies_equation(
            ex in -20.0f64..20.0, ey in -20.0f64..20.0,
            s_frac in -0.95f64..0.95,
            theta in 0.0f64..TAU,
        ) {
            let e = Vector::new(ex, ey);
            prop_assume!(e.norm() > 0.5);
            let shift = s_frac * e.norm();
            let c = FocalCurve::new(e, shift).unwrap();
            if let Some(x) = c.point_at(Point::ORIGIN, theta) {
                prop_assert!(
                    c.residual(Point::ORIGIN, x).abs() < 1e-7 * (1.0 + x.to_vector().norm()),
                    "residual {}", c.residual(Point::ORIGIN, x)
                );
            }
        }

        #[test]
        fn prop_window_matches_radial_domain(
            ex in -20.0f64..20.0, ey in -20.0f64..20.0,
            s_frac in -0.9f64..0.9,
            theta in 0.0f64..TAU,
        ) {
            let e = Vector::new(ex, ey);
            prop_assume!(e.norm() > 0.5);
            let c = FocalCurve::new(e, s_frac * e.norm()).unwrap();
            let w = c.window();
            // Away from the window boundary the two notions agree.
            let dist_to_boundary = {
                let half = w.extent / 2.0;
                let mid = norm_angle(w.start + half);
                (crate::angle::ccw_delta(mid, theta).min(crate::angle::ccw_delta(theta, mid)) - half).abs()
            };
            prop_assume!(dist_to_boundary > 1e-6);
            prop_assert_eq!(w.contains(theta), c.radial(theta).is_some());
        }

        #[test]
        fn prop_intersections_lie_on_both(
            e1x in 2.0f64..20.0, e1y in -20.0f64..20.0,
            e2x in -20.0f64..-2.0, e2y in -20.0f64..20.0,
            s1 in -0.8f64..0.8, s2 in -0.8f64..0.8,
        ) {
            let e1 = Vector::new(e1x, e1y);
            let e2 = Vector::new(e2x, e2y);
            let c1 = FocalCurve::new(e1, s1 * e1.norm()).unwrap();
            let c2 = FocalCurve::new(e2, s2 * e2.norm()).unwrap();
            for &t in &c1.intersect_angles(&c2) {
                let r1 = c1.radial(t).unwrap();
                let r2 = c2.radial(t).unwrap();
                prop_assert!((r1 - r2).abs() <= 1e-6 * (1.0 + r1.abs() + r2.abs()),
                    "r1={r1} r2={r2}");
            }
        }
    }
}
