//! Floating-point expansion arithmetic.
//!
//! An *expansion* is a sum of `f64` components, stored in increasing order of
//! magnitude, whose exact mathematical value is the sum of its components and
//! whose components are non-overlapping. Expansions allow exact addition and
//! multiplication of floating-point values, which is the engine behind the
//! adaptive-precision geometric predicates in [`crate::predicates`].
//!
//! The algorithms are the classic error-free transformations of Dekker and
//! Knuth and the expansion operations of Shewchuk ("Adaptive Precision
//! Floating-Point Arithmetic and Fast Robust Geometric Predicates", 1997),
//! implemented from scratch.

/// Error-free transformation: returns `(hi, lo)` with `hi + lo == a + b`
/// exactly, `hi = fl(a + b)`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let bv = hi - a;
    let av = hi - bv;
    let lo = (a - av) + (b - bv);
    (hi, lo)
}

/// Error-free transformation valid when `|a| >= |b|` (or `a == 0`).
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let lo = b - (hi - a);
    (hi, lo)
}

/// Error-free transformation: returns `(hi, lo)` with `hi + lo == a - b`.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let hi = a - b;
    let bv = a - hi;
    let av = hi + bv;
    let lo = (a - av) + (bv - b);
    (hi, lo)
}

/// Error-free transformation: returns `(hi, lo)` with `hi + lo == a * b`
/// exactly, using fused multiply-add.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let hi = a * b;
    let lo = a.mul_add(b, -hi);
    (hi, lo)
}

/// An exact multi-component floating-point value.
///
/// Components are stored least-significant first. The value of the expansion
/// is the exact sum of all components. Small fixed arithmetic chains keep
/// everything on the stack via `Vec` with small capacities; predicate hot
/// paths use the fixed-size helpers below instead.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Expansion {
    comps: Vec<f64>,
}

impl Expansion {
    /// The zero expansion.
    #[inline]
    pub fn zero() -> Self {
        Expansion { comps: Vec::new() }
    }

    /// An expansion holding a single `f64`.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        if x == 0.0 {
            Self::zero()
        } else {
            Expansion { comps: vec![x] }
        }
    }

    /// Exact product of two `f64`s as an expansion.
    #[inline]
    pub fn from_product(a: f64, b: f64) -> Self {
        let (hi, lo) = two_product(a, b);
        let mut comps = Vec::with_capacity(2);
        if lo != 0.0 {
            comps.push(lo);
        }
        if hi != 0.0 {
            comps.push(hi);
        }
        Expansion { comps }
    }

    /// Number of nonzero components.
    #[inline]
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    /// `true` if the expansion represents exactly zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// Adds a single `f64` exactly (Shewchuk's `GROW-EXPANSION`).
    pub fn add_f64(&self, b: f64) -> Expansion {
        let mut out = Vec::with_capacity(self.comps.len() + 1);
        let mut q = b;
        for &e in &self.comps {
            let (sum, err) = two_sum(q, e);
            if err != 0.0 {
                out.push(err);
            }
            q = sum;
        }
        if q != 0.0 {
            out.push(q);
        }
        Expansion { comps: out }
    }

    /// Exact sum of two expansions (`EXPANSION-SUM` by repeated grows;
    /// adequate for the short expansions used by the predicates).
    pub fn add(&self, other: &Expansion) -> Expansion {
        let mut acc = self.clone();
        for &c in &other.comps {
            acc = acc.add_f64(c);
        }
        acc
    }

    /// Exact difference `self - other`.
    pub fn sub(&self, other: &Expansion) -> Expansion {
        let mut acc = self.clone();
        for &c in &other.comps {
            acc = acc.add_f64(-c);
        }
        acc
    }

    /// Exact product by a single `f64` (`SCALE-EXPANSION`).
    pub fn scale(&self, b: f64) -> Expansion {
        if b == 0.0 || self.comps.is_empty() {
            return Expansion::zero();
        }
        let mut out = Vec::with_capacity(2 * self.comps.len());
        let (mut q, lo) = two_product(self.comps[0], b);
        if lo != 0.0 {
            out.push(lo);
        }
        for &e in &self.comps[1..] {
            let (t_hi, t_lo) = two_product(e, b);
            let (s, err) = two_sum(q, t_lo);
            if err != 0.0 {
                out.push(err);
            }
            let (new_q, err2) = fast_two_sum(t_hi, s);
            if err2 != 0.0 {
                out.push(err2);
            }
            q = new_q;
        }
        if q != 0.0 {
            out.push(q);
        }
        Expansion { comps: out }
    }

    /// Exact product of two expansions (distributes `scale` over components).
    pub fn mul(&self, other: &Expansion) -> Expansion {
        let mut acc = Expansion::zero();
        for &c in &other.comps {
            acc = acc.add(&self.scale(c));
        }
        acc
    }

    /// Best single-`f64` approximation (sum of components, most significant
    /// last so the final addition dominates).
    #[inline]
    pub fn estimate(&self) -> f64 {
        self.comps.iter().sum()
    }

    /// Exact sign of the represented value.
    ///
    /// The most significant component of a nonzero expansion determines the
    /// sign because components are non-overlapping.
    #[inline]
    pub fn signum(&self) -> i32 {
        match self.comps.last() {
            None => 0,
            Some(&c) if c > 0.0 => 1,
            Some(&c) if c < 0.0 => -1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_exact_sum(e: &Expansion, expected: f64) {
        // For values representable exactly, estimate must match exactly.
        assert_eq!(e.estimate(), expected, "expansion {:?}", e);
    }

    #[test]
    fn two_sum_recovers_rounding_error() {
        let (hi, lo) = two_sum(1.0, 1e-30);
        assert_eq!(hi, 1.0);
        assert_eq!(lo, 1e-30);
    }

    #[test]
    fn two_product_exact() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 + f64::EPSILON;
        let (hi, lo) = two_product(a, b);
        // a*b = 1 + 2eps + eps^2; hi = fl(a*b), lo captures the eps^2 part.
        assert_eq!(hi + lo, hi); // hi dominates in f64...
        assert!(lo != 0.0); // ...but the error term is nonzero and exact.
    }

    #[test]
    fn expansion_add_cancellation() {
        let a = Expansion::from_f64(1e30);
        let b = a.add_f64(1.0).add_f64(-1e30);
        assert_exact_sum(&b, 1.0);
        assert_eq!(b.signum(), 1);
    }

    #[test]
    fn expansion_product_of_sums() {
        // (2^60 + 1)^2 = 2^120 + 2^61 + 1 is not representable in f64 but is
        // exactly representable as an expansion.
        let x = Expansion::from_f64((2f64).powi(60)).add_f64(1.0);
        let sq = x.mul(&x);
        let back = sq
            .sub(&Expansion::from_f64((2f64).powi(120)))
            .sub(&Expansion::from_f64((2f64).powi(61)));
        assert_exact_sum(&back, 1.0);
    }

    #[test]
    fn signum_of_tiny_difference() {
        // x = 1 + eps, y = 1; x^2 - y^2 - 2eps = eps^2 > 0, far below f64
        // resolution when accumulated naively around 1.
        let eps = f64::EPSILON;
        let x = Expansion::from_f64(1.0).add_f64(eps);
        let diff = x
            .mul(&x)
            .sub(&Expansion::from_f64(1.0))
            .sub(&Expansion::from_f64(2.0 * eps));
        assert_eq!(diff.signum(), 1);
        assert_eq!(diff.estimate(), eps * eps);
    }

    #[test]
    fn zero_expansion() {
        let z = Expansion::from_f64(0.0);
        assert!(z.is_empty());
        assert_eq!(z.signum(), 0);
        assert_eq!(z.estimate(), 0.0);
        let z2 = Expansion::from_f64(5.0).add_f64(-5.0);
        assert_eq!(z2.signum(), 0);
    }

    proptest! {
        #[test]
        fn prop_two_sum_exact(a in -1e12f64..1e12, b in -1e-6f64..1e-6) {
            let (hi, lo) = two_sum(a, b);
            // Reconstruct in higher precision via integer-scaled check:
            // hi + lo must equal a + b exactly as reals. Verify via
            // re-subtraction with expansions.
            let e = Expansion::from_f64(a).add_f64(b).add_f64(-hi).add_f64(-lo);
            prop_assert_eq!(e.signum(), 0);
        }

        #[test]
        fn prop_two_product_exact(a in -1e8f64..1e8, b in -1e8f64..1e8) {
            let (hi, lo) = two_product(a, b);
            let e = Expansion::from_product(a, b)
                .add_f64(-hi)
                .add_f64(-lo);
            prop_assert_eq!(e.signum(), 0);
        }

        #[test]
        fn prop_scale_matches_mul(a in -1e8f64..1e8, b in -1e8f64..1e8, c in -1e3f64..1e3) {
            let e = Expansion::from_f64(a).add_f64(b);
            let s = e.scale(c);
            let m = e.mul(&Expansion::from_f64(c));
            prop_assert_eq!(s.sub(&m).signum(), 0);
        }

        #[test]
        fn prop_sub_self_is_zero(a in -1e15f64..1e15, b in -1e-3f64..1e-3) {
            let e = Expansion::from_f64(a).add_f64(b);
            prop_assert_eq!(e.sub(&e).signum(), 0);
        }
    }
}
