//! Robust geometric predicates.
//!
//! Each predicate first evaluates a fast floating-point approximation with a
//! forward error bound; only when the result is within the error bound of
//! zero does it fall back to exact evaluation with
//! `Expansion` arithmetic (see [`crate::expansion`]). This is the
//! two-stage (filter + exact) scheme of Shewchuk's adaptive predicates,
//! simplified: the exact stage recomputes the whole determinant rather than
//! refining incrementally, which is fast enough because the filter already
//! resolves virtually all inputs.

use crate::expansion::Expansion;
use crate::point::Point;

/// Which side of the directed line `a -> b` the point `c` lies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// `c` is strictly to the left (counter-clockwise turn).
    CounterClockwise,
    /// `c` is strictly to the right (clockwise turn).
    Clockwise,
    /// The three points are exactly collinear.
    Collinear,
}

// Error-bound coefficients from Shewchuk (1997), Table 1.
const EPS: f64 = f64::EPSILON / 2.0;
const ORIENT2D_BOUND: f64 = (3.0 + 16.0 * EPS) * EPS;
const INCIRCLE_BOUND: f64 = (10.0 + 96.0 * EPS) * EPS;

/// Signed twice-area of triangle `(a, b, c)`: positive iff counter-clockwise.
///
/// Exact sign; magnitude is the floating-point approximation (adequate for
/// comparisons against explicit tolerances by callers who need magnitudes).
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return det;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return det;
        }
        -detleft - detright
    } else {
        return det;
    };

    let errbound = ORIENT2D_BOUND * detsum;
    if det >= errbound || -det >= errbound {
        return det;
    }
    orient2d_exact(a, b, c)
}

fn orient2d_exact(a: Point, b: Point, c: Point) -> f64 {
    // det = (ax-cx)(by-cy) - (ay-cy)(bx-cx), expanded over exact differences.
    // Differences of f64 are not exact in general, so expand fully:
    // det = ax*by - ax*cy - cx*by + cx*cy - ay*bx + ay*cx + cy*bx - cy*cx
    let terms = [
        Expansion::from_product(a.x, b.y),
        Expansion::from_product(a.x, c.y).scale(-1.0),
        Expansion::from_product(c.x, b.y).scale(-1.0),
        Expansion::from_product(c.x, c.y),
        Expansion::from_product(a.y, b.x).scale(-1.0),
        Expansion::from_product(a.y, c.x),
        Expansion::from_product(c.y, b.x),
        Expansion::from_product(c.y, c.x).scale(-1.0),
    ];
    let mut acc = Expansion::zero();
    for t in &terms {
        acc = acc.add(t);
    }
    match acc.signum() {
        0 => 0.0,
        s => {
            let est = acc.estimate();
            if est != 0.0 {
                est
            } else {
                s as f64 * f64::MIN_POSITIVE
            }
        }
    }
}

/// Orientation of `c` relative to the directed line `a -> b`, with exact sign.
#[inline]
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let det = orient2d(a, b, c);
    if det > 0.0 {
        Orientation::CounterClockwise
    } else if det < 0.0 {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// In-circle test: positive iff `d` lies strictly inside the circle through
/// `a`, `b`, `c` (which must be in counter-clockwise order).
///
/// Exact sign via adaptive evaluation.
pub fn incircle(a: Point, b: Point, c: Point, d: Point) -> f64 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = INCIRCLE_BOUND * permanent;
    if det > errbound || -det > errbound {
        return det;
    }
    incircle_exact(a, b, c, d)
}

fn incircle_exact(a: Point, b: Point, c: Point, d: Point) -> f64 {
    // Exact 4x4 determinant via expansions on exact coordinate differences.
    // Differences like a.x - d.x are inexact in f64; compute them as 2-term
    // expansions with two_diff and carry exactness through.
    let col = |p: Point| -> (Expansion, Expansion) {
        let (hx, lx) = crate::expansion::two_diff(p.x, d.x);
        let (hy, ly) = crate::expansion::two_diff(p.y, d.y);
        (
            Expansion::from_f64(lx).add_f64(hx),
            Expansion::from_f64(ly).add_f64(hy),
        )
    };
    let (ax, ay) = col(a);
    let (bx, by) = col(b);
    let (cx, cy) = col(c);

    let lift = |x: &Expansion, y: &Expansion| x.mul(x).add(&y.mul(y));
    let la = lift(&ax, &ay);
    let lb = lift(&bx, &by);
    let lc = lift(&cx, &cy);

    let det2 = |x1: &Expansion, y1: &Expansion, x2: &Expansion, y2: &Expansion| {
        x1.mul(y2).sub(&x2.mul(y1))
    };

    let m_a = det2(&bx, &by, &cx, &cy);
    let m_b = det2(&ax, &ay, &cx, &cy);
    let m_c = det2(&ax, &ay, &bx, &by);

    let det = la.mul(&m_a).sub(&lb.mul(&m_b)).add(&lc.mul(&m_c));
    match det.signum() {
        0 => 0.0,
        s => {
            let est = det.estimate();
            if est != 0.0 {
                est
            } else {
                s as f64 * f64::MIN_POSITIVE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orient_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orientation(a, b, Point::new(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(0.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orient_near_degenerate_is_exact() {
        // Classic adversarial case: points nearly collinear with tiny offsets
        // that naive evaluation misclassifies.
        let a = Point::new(0.5, 0.5);
        let b = Point::new(12.0, 12.0);
        for i in 0..64 {
            let x = 0.5 + (i as f64) * f64::EPSILON;
            let c = Point::new(x, x);
            // c is exactly on the line y = x, as are a and b.
            assert_eq!(orientation(a, b, c), Orientation::Collinear, "i={i}");
        }
    }

    #[test]
    fn orient_detects_epsilon_perturbation() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1e10, 1e10);
        let c = Point::new(0.5e10, 0.5e10 + 1e-6);
        assert_eq!(orientation(a, b, c), Orientation::CounterClockwise);
        let c2 = Point::new(0.5e10, 0.5e10 - 1e-6);
        assert_eq!(orientation(a, b, c2), Orientation::Clockwise);
    }

    #[test]
    fn incircle_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        // Circumcircle has center (0.5, 0.5), radius sqrt(0.5).
        assert!(incircle(a, b, c, Point::new(0.5, 0.5)) > 0.0);
        assert!(incircle(a, b, c, Point::new(2.0, 2.0)) < 0.0);
        assert_eq!(incircle(a, b, c, Point::new(1.0, 1.0)), 0.0); // cocircular
    }

    #[test]
    fn incircle_cocircular_exact() {
        // Four points on the unit circle with exactly representable coords.
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        let c = Point::new(-1.0, 0.0);
        let d = Point::new(0.0, -1.0);
        assert_eq!(incircle(a, b, c, d), 0.0);
    }

    fn naive_orient(a: Point, b: Point, c: Point) -> f64 {
        (a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x)
    }

    proptest! {
        #[test]
        fn prop_orient_antisymmetry(
            ax in -100.0f64..100.0, ay in -100.0f64..100.0,
            bx in -100.0f64..100.0, by in -100.0f64..100.0,
            cx in -100.0f64..100.0, cy in -100.0f64..100.0,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            let s1 = orient2d(a, b, c);
            let s2 = orient2d(b, a, c);
            prop_assert_eq!(s1 > 0.0, s2 < 0.0);
            prop_assert_eq!(s1 == 0.0, s2 == 0.0);
        }

        #[test]
        fn prop_orient_cyclic_invariance(
            ax in -100.0f64..100.0, ay in -100.0f64..100.0,
            bx in -100.0f64..100.0, by in -100.0f64..100.0,
            cx in -100.0f64..100.0, cy in -100.0f64..100.0,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert_eq!(orient2d(a, b, c) > 0.0, orient2d(b, c, a) > 0.0);
            prop_assert_eq!(orient2d(a, b, c) > 0.0, orient2d(c, a, b) > 0.0);
        }

        #[test]
        fn prop_orient_agrees_with_naive_when_clear(
            ax in -100.0f64..100.0, ay in -100.0f64..100.0,
            bx in -100.0f64..100.0, by in -100.0f64..100.0,
            cx in -100.0f64..100.0, cy in -100.0f64..100.0,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            let naive = naive_orient(a, b, c);
            if naive.abs() > 1e-6 {
                prop_assert_eq!(naive > 0.0, orient2d(a, b, c) > 0.0);
            }
        }

        #[test]
        fn prop_incircle_symmetric_under_ccw_rotation(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0,
            cx in -10.0f64..10.0, cy in -10.0f64..10.0,
            dx in -10.0f64..10.0, dy in -10.0f64..10.0,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            let d = Point::new(dx, dy);
            let s1 = incircle(a, b, c, d);
            let s2 = incircle(b, c, a, d);
            prop_assert_eq!(s1 > 0.0, s2 > 0.0);
            prop_assert_eq!(s1 == 0.0, s2 == 0.0);
        }
    }
}
