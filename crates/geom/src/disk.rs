//! Circular disks: the canonical uncertainty region of the paper.
//!
//! Provides min/max distance (the paper's `δ_i(q)` and `Δ_i(q)`), containment
//! and tangency relations, circle–circle intersection points, and the area of
//! the intersection of two disks (the *lens*), which yields the closed-form
//! distance cdf `G_{q,i}` for uniformly distributed uncertain points.

use crate::point::{Point, Vector};

/// A closed disk with center and non-negative radius.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Disk {
    /// Center.
    pub center: Point,
    /// Radius (`>= 0`; a zero radius is a point).
    pub radius: f64,
}

impl Disk {
    /// Creates a disk.
    ///
    /// # Panics
    /// On a negative or non-finite radius, or non-finite center — rejecting
    /// bad inputs at construction keeps every downstream structure free of
    /// NaN poisoning.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius >= 0.0 && radius.is_finite() && center.is_finite(),
            "bad disk: center {center:?}, radius {radius}"
        );
        Disk { center, radius }
    }

    /// Minimum distance from `q` to the disk: the paper's `δ(q)`.
    ///
    /// Zero when `q` lies inside the disk.
    #[inline]
    pub fn min_dist(&self, q: Point) -> f64 {
        (q.dist(self.center) - self.radius).max(0.0)
    }

    /// Maximum distance from `q` to the disk: the paper's `Δ(q)`.
    #[inline]
    pub fn max_dist(&self, q: Point) -> f64 {
        q.dist(self.center) + self.radius
    }

    /// `true` if `q` lies in the closed disk.
    #[inline]
    pub fn contains(&self, q: Point) -> bool {
        q.dist2(self.center) <= self.radius * self.radius
    }

    /// `true` if `other` lies entirely inside the closed disk.
    #[inline]
    pub fn contains_disk(&self, other: &Disk) -> bool {
        self.center.dist(other.center) + other.radius <= self.radius
    }

    /// `true` if the closed disks share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Disk) -> bool {
        self.center.dist(other.center) <= self.radius + other.radius
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        core::f64::consts::PI * self.radius * self.radius
    }

    /// Area of the intersection of two disks (the lens).
    ///
    /// Uses the standard circular-segment formula; exact up to rounding.
    /// This is the workhorse of the uniform-disk distance cdf: for a point
    /// `P` uniform on disk `D`, `Pr[d(q, P) <= r] = area(D ∩ disk(q, r)) /
    /// area(D)`.
    pub fn lens_area(&self, other: &Disk) -> f64 {
        let d = self.center.dist(other.center);
        let (r1, r2) = (self.radius, other.radius);
        if d >= r1 + r2 {
            return 0.0;
        }
        if d + r1 <= r2 {
            return self.area();
        }
        if d + r2 <= r1 {
            return other.area();
        }
        // Proper lens. Half-angle at each center subtended by the chord.
        let a1 = ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1)).clamp(-1.0, 1.0);
        let a2 = ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2)).clamp(-1.0, 1.0);
        let t1 = a1.acos();
        let t2 = a2.acos();
        r1 * r1 * (t1 - t1.sin() * t1.cos()) + r2 * r2 * (t2 - t2.sin() * t2.cos())
    }

    /// Intersection points of the two circle boundaries.
    ///
    /// Returns `None` when the circles are disjoint, nested, or identical;
    /// tangency yields a single repeated point.
    pub fn circle_intersections(&self, other: &Disk) -> Option<(Point, Point)> {
        let e = other.center - self.center;
        let d = e.norm();
        let (r1, r2) = (self.radius, other.radius);
        if d == 0.0 || d > r1 + r2 || d < (r1 - r2).abs() {
            return None;
        }
        // Distance from self.center to the chord along e.
        let a = (d * d + r1 * r1 - r2 * r2) / (2.0 * d);
        let h2 = r1 * r1 - a * a;
        let h = h2.max(0.0).sqrt();
        let u = e / d;
        let mid = self.center + u * a;
        let n = u.perp() * h;
        Some((mid + n, mid - n))
    }

    /// The point of the disk boundary closest to `q` (for `q != center`).
    #[inline]
    pub fn closest_boundary_point(&self, q: Point) -> Option<Point> {
        let u: Vector = (q - self.center).normalized()?;
        Some(self.center + u * self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn min_max_dist_match_paper_definitions() {
        // Paper Fig. 1 setup: disk of radius 5 at origin, q = (6, 8).
        let d = Disk::new(Point::ORIGIN, 5.0);
        let q = Point::new(6.0, 8.0);
        assert_eq!(d.min_dist(q), 5.0); // |q| = 10, minus radius
        assert_eq!(d.max_dist(q), 15.0);
        // Inside the disk, min distance is zero.
        assert_eq!(d.min_dist(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(d.max_dist(Point::ORIGIN), 5.0);
    }

    #[test]
    fn containment_relations() {
        let big = Disk::new(Point::ORIGIN, 5.0);
        let small = Disk::new(Point::new(1.0, 0.0), 2.0);
        assert!(big.contains_disk(&small));
        assert!(!small.contains_disk(&big));
        assert!(big.intersects(&small));
        let far = Disk::new(Point::new(100.0, 0.0), 2.0);
        assert!(!big.intersects(&far));
    }

    #[test]
    fn lens_area_limits() {
        let a = Disk::new(Point::ORIGIN, 2.0);
        let b = Disk::new(Point::new(10.0, 0.0), 1.0);
        assert_eq!(a.lens_area(&b), 0.0); // disjoint
        let inner = Disk::new(Point::new(0.5, 0.0), 1.0);
        assert!((a.lens_area(&inner) - inner.area()).abs() < 1e-12); // nested
        assert!((a.lens_area(&a) - a.area()).abs() < 1e-12); // identical
    }

    #[test]
    fn lens_area_half_overlap_symmetric() {
        // Two unit circles at distance d: known lens formula
        // A = 2 r^2 cos^-1(d/2r) - (d/2) sqrt(4r^2 - d^2).
        let r = 1.0;
        for &d in &[0.5, 1.0, 1.5, 1.999] {
            let a = Disk::new(Point::ORIGIN, r);
            let b = Disk::new(Point::new(d, 0.0), r);
            let expected =
                2.0 * r * r * (d / (2.0 * r)).acos() - (d / 2.0) * (4.0 * r * r - d * d).sqrt();
            assert!(
                (a.lens_area(&b) - expected).abs() < 1e-12,
                "d={d}: {} vs {}",
                a.lens_area(&b),
                expected
            );
        }
    }

    #[test]
    fn circle_intersections_basic() {
        let a = Disk::new(Point::ORIGIN, 1.0);
        let b = Disk::new(Point::new(1.0, 0.0), 1.0);
        let (p1, p2) = a.circle_intersections(&b).unwrap();
        for p in [p1, p2] {
            assert!((p.dist(a.center) - 1.0).abs() < 1e-12);
            assert!((p.dist(b.center) - 1.0).abs() < 1e-12);
        }
        assert!((p1.x - 0.5).abs() < 1e-12 && (p2.x - 0.5).abs() < 1e-12);
        // Tangent circles: single repeated point.
        let c = Disk::new(Point::new(2.0, 0.0), 1.0);
        let (t1, t2) = a.circle_intersections(&c).unwrap();
        assert!(t1.dist(t2) < 1e-9);
        assert!(t1.dist(Point::new(1.0, 0.0)) < 1e-9);
        // Disjoint / nested: none.
        assert!(a
            .circle_intersections(&Disk::new(Point::new(5.0, 0.0), 1.0))
            .is_none());
        assert!(a
            .circle_intersections(&Disk::new(Point::ORIGIN, 0.5))
            .is_none());
    }

    #[test]
    fn closest_boundary_point_is_on_circle() {
        let d = Disk::new(Point::new(1.0, 1.0), 2.0);
        let q = Point::new(10.0, 1.0);
        let p = d.closest_boundary_point(q).unwrap();
        assert!(p.dist(Point::new(3.0, 1.0)) < 1e-12);
        assert!(d.closest_boundary_point(d.center).is_none());
    }

    proptest! {
        #[test]
        fn prop_lens_area_bounds(
            cx in -5.0f64..5.0, cy in -5.0f64..5.0,
            r1 in 0.01f64..4.0, r2 in 0.01f64..4.0,
        ) {
            let a = Disk::new(Point::ORIGIN, r1);
            let b = Disk::new(Point::new(cx, cy), r2);
            let lens = a.lens_area(&b);
            prop_assert!(lens >= -1e-12);
            prop_assert!(lens <= a.area().min(b.area()) + 1e-9);
            // Symmetry.
            prop_assert!((lens - b.lens_area(&a)).abs() < 1e-9);
        }

        #[test]
        fn prop_lens_area_vs_monte_carlo(
            cx in -3.0f64..3.0, r2 in 0.5f64..3.0,
        ) {
            let a = Disk::new(Point::ORIGIN, 2.0);
            let b = Disk::new(Point::new(cx, 0.0), r2);
            let lens = a.lens_area(&b);
            // Deterministic grid "Monte Carlo" over a's bounding box.
            let n = 200;
            let mut hits = 0u32;
            for i in 0..n {
                for j in 0..n {
                    let p = Point::new(
                        -2.0 + 4.0 * (i as f64 + 0.5) / n as f64,
                        -2.0 + 4.0 * (j as f64 + 0.5) / n as f64,
                    );
                    if a.contains(p) && b.contains(p) { hits += 1; }
                }
            }
            let approx = hits as f64 * (4.0 * 4.0) / (n * n) as f64;
            prop_assert!((lens - approx).abs() < 0.15, "lens={lens} approx={approx}");
        }

        #[test]
        fn prop_min_max_dist_consistent(
            cx in -10.0f64..10.0, cy in -10.0f64..10.0, r in 0.0f64..5.0,
            qx in -10.0f64..10.0, qy in -10.0f64..10.0,
        ) {
            let d = Disk::new(Point::new(cx, cy), r);
            let q = Point::new(qx, qy);
            prop_assert!(d.min_dist(q) <= d.max_dist(q));
            prop_assert!((d.max_dist(q) - d.min_dist(q)) <= 2.0 * r + 1e-12);
            prop_assert_eq!(d.min_dist(q) == 0.0, d.contains(q));
        }
    }
}
