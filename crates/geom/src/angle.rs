//! Angles, angular intervals, and trigonometric equation solving.
//!
//! The nonzero-Voronoi machinery represents bisector curves as radial
//! functions in polar coordinates; their domains are angular intervals and
//! their pairwise intersections reduce to equations of the form
//! `a cos t + b sin t = c` (see [`solve_cos_sin`]).

use core::f64::consts::TAU;

/// Normalizes an angle to `[0, 2*pi)`.
#[inline]
pub fn norm_angle(theta: f64) -> f64 {
    let t = theta % TAU;
    if t < 0.0 {
        t + TAU
    } else {
        t
    }
}

/// Counter-clockwise angular distance from `from` to `to`, in `[0, 2*pi)`.
#[inline]
pub fn ccw_delta(from: f64, to: f64) -> f64 {
    norm_angle(to - from)
}

/// Solves `a*cos(t) + b*sin(t) = c` for `t` in `[0, 2*pi)`.
///
/// Returns 0, 1, or 2 solutions. Writing `a cos t + b sin t =
/// r cos(t - phi)` with `r = hypot(a, b)` and `phi = atan2(b, a)`, solutions
/// exist iff `|c| <= r`. The tangential case `|c| == r` yields one solution.
pub fn solve_cos_sin(a: f64, b: f64, c: f64) -> SolveCosSin {
    let r = a.hypot(b);
    if r == 0.0 {
        // Degenerate: equation is `0 = c`.
        return SolveCosSin::none();
    }
    let phi = b.atan2(a);
    let ratio = c / r;
    if !(-1.0..=1.0).contains(&ratio) {
        return SolveCosSin::none();
    }
    let d = ratio.clamp(-1.0, 1.0).acos();
    if d == 0.0 {
        SolveCosSin::one(norm_angle(phi))
    } else if (d - core::f64::consts::PI).abs() == 0.0 {
        SolveCosSin::one(norm_angle(phi + core::f64::consts::PI))
    } else {
        SolveCosSin::two(norm_angle(phi + d), norm_angle(phi - d))
    }
}

/// Result of [`solve_cos_sin`]: up to two angles, without heap allocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveCosSin {
    sols: [f64; 2],
    n: u8,
}

impl SolveCosSin {
    #[inline]
    fn none() -> Self {
        SolveCosSin {
            sols: [0.0; 2],
            n: 0,
        }
    }
    #[inline]
    fn one(t: f64) -> Self {
        SolveCosSin {
            sols: [t, 0.0],
            n: 1,
        }
    }
    #[inline]
    fn two(t1: f64, t2: f64) -> Self {
        SolveCosSin {
            sols: [t1, t2],
            n: 2,
        }
    }

    /// Solutions as a slice (0 to 2 angles in `[0, 2*pi)`).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.sols[..self.n as usize]
    }

    /// Number of solutions.
    #[inline]
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// `true` if the equation has no solution.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// A closed angular interval on the unit circle, possibly wrapping `2*pi`.
///
/// `start` and `end` are in `[0, 2*pi)`; the interval runs counter-clockwise
/// from `start` to `end`. A full circle is represented by
/// [`ArcInterval::FULL`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArcInterval {
    /// Start angle in `[0, 2*pi)`.
    pub start: f64,
    /// CCW extent in `(0, 2*pi]`.
    pub extent: f64,
}

impl ArcInterval {
    /// The full circle.
    pub const FULL: ArcInterval = ArcInterval {
        start: 0.0,
        extent: TAU,
    };

    /// Interval from `start` running counter-clockwise to `end`.
    #[inline]
    pub fn from_endpoints(start: f64, end: f64) -> Self {
        let s = norm_angle(start);
        let mut extent = ccw_delta(start, end);
        if extent == 0.0 {
            extent = TAU; // degenerate endpoints mean the full circle here
        }
        ArcInterval { start: s, extent }
    }

    /// Interval centered at `mid` with half-width `half` (radians).
    #[inline]
    pub fn centered(mid: f64, half: f64) -> Self {
        debug_assert!(half >= 0.0);
        if half >= core::f64::consts::PI {
            return ArcInterval::FULL;
        }
        ArcInterval {
            start: norm_angle(mid - half),
            extent: 2.0 * half,
        }
    }

    /// End angle in `[0, 2*pi)`.
    #[inline]
    pub fn end(&self) -> f64 {
        norm_angle(self.start + self.extent)
    }

    /// `true` if `theta` lies in the closed interval.
    #[inline]
    pub fn contains(&self, theta: f64) -> bool {
        if self.extent >= TAU {
            return true;
        }
        ccw_delta(self.start, theta) <= self.extent
    }

    /// `true` if the interval covers the whole circle.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.extent >= TAU
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::{FRAC_PI_2, PI};
    use proptest::prelude::*;

    #[test]
    fn norm_angle_ranges() {
        assert_eq!(norm_angle(0.0), 0.0);
        assert!((norm_angle(-FRAC_PI_2) - 3.0 * FRAC_PI_2).abs() < 1e-15);
        assert!((norm_angle(TAU + 1.0) - 1.0).abs() < 1e-15);
        assert!(norm_angle(TAU) < 1e-15);
    }

    #[test]
    fn solve_cos_sin_simple() {
        // cos t = 0 -> t = pi/2, 3pi/2
        let s = solve_cos_sin(1.0, 0.0, 0.0);
        assert_eq!(s.len(), 2);
        let mut sols: Vec<f64> = s.as_slice().to_vec();
        sols.sort_by(f64::total_cmp);
        assert!((sols[0] - FRAC_PI_2).abs() < 1e-12);
        assert!((sols[1] - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn solve_cos_sin_tangent() {
        // cos t = 1 -> t = 0 (single solution)
        let s = solve_cos_sin(1.0, 0.0, 1.0);
        assert_eq!(s.len(), 1);
        assert!(s.as_slice()[0].abs() < 1e-12 || (s.as_slice()[0] - TAU).abs() < 1e-12);
        // cos t = -1 -> t = pi
        let s = solve_cos_sin(1.0, 0.0, -1.0);
        assert_eq!(s.len(), 1);
        assert!((s.as_slice()[0] - PI).abs() < 1e-12);
    }

    #[test]
    fn solve_cos_sin_no_solution() {
        assert!(solve_cos_sin(1.0, 1.0, 3.0).is_empty());
        assert!(solve_cos_sin(0.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn arc_interval_contains() {
        let arc = ArcInterval::from_endpoints(3.0 * FRAC_PI_2, FRAC_PI_2); // wraps 0
        assert!(arc.contains(0.0));
        assert!(arc.contains(6.0));
        assert!(!arc.contains(PI));
        assert!(arc.contains(FRAC_PI_2));
        assert!(arc.contains(3.0 * FRAC_PI_2));
    }

    #[test]
    fn arc_centered() {
        let arc = ArcInterval::centered(0.0, 0.5);
        assert!(arc.contains(0.4));
        assert!(arc.contains(-0.4 + TAU));
        assert!(!arc.contains(0.6));
        assert!(ArcInterval::centered(1.0, 4.0).is_full());
    }

    proptest! {
        #[test]
        fn prop_solutions_satisfy_equation(
            a in -10.0f64..10.0, b in -10.0f64..10.0, c in -10.0f64..10.0
        ) {
            for &t in solve_cos_sin(a, b, c).as_slice() {
                let lhs = a * t.cos() + b * t.sin();
                prop_assert!((lhs - c).abs() < 1e-8 * (1.0 + a.abs() + b.abs()),
                    "t={t} lhs={lhs} c={c}");
            }
        }

        #[test]
        fn prop_solution_count_matches_geometry(
            a in -10.0f64..10.0, b in -10.0f64..10.0, c in -10.0f64..10.0
        ) {
            let r = a.hypot(b);
            let s = solve_cos_sin(a, b, c);
            if c.abs() > r + 1e-12 {
                prop_assert!(s.is_empty());
            } else if c.abs() < r - 1e-12 && r > 0.0 {
                prop_assert_eq!(s.len(), 2);
            }
        }

        #[test]
        fn prop_arc_contains_endpoints(s in 0.0f64..TAU, e in 0.0f64..TAU) {
            prop_assume!((s - e).abs() > 1e-9);
            let arc = ArcInterval::from_endpoints(s, e);
            prop_assert!(arc.contains(s));
            prop_assert!(arc.contains(e));
        }
    }
}
