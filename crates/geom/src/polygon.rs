//! Convex polygons and half-plane intersection.
//!
//! The discrete-distribution nonzero Voronoi diagram (paper §2.2) needs the
//! *forbidden regions* `K_ij = { x : Φ_j(x) - φ_i(x) <= 0 }`, each the
//! intersection of `k²` half-planes (Lemma 2.13 shows the boundary has `O(k)`
//! vertices). [`ConvexPolygon::halfplane_intersection`] computes such regions
//! by successive clipping, which is `O(m·v)` for `m` half-planes and `v`
//! vertices — simple, robust, and fast for the small `k` in play.

use crate::bbox::Aabb;
use crate::point::Point;
use crate::predicates::orient2d;
use crate::segment::{Line, Segment};

/// A (possibly empty) convex polygon with counter-clockwise vertices.
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConvexPolygon {
    verts: Vec<Point>,
}

impl ConvexPolygon {
    /// The empty polygon.
    #[inline]
    pub fn empty() -> Self {
        ConvexPolygon { verts: Vec::new() }
    }

    /// Builds from vertices assumed to be convex and counter-clockwise.
    #[inline]
    pub fn from_ccw_vertices(verts: Vec<Point>) -> Self {
        debug_assert!(
            verts.len() < 3 || Self::is_ccw_convex(&verts),
            "vertices not CCW convex"
        );
        ConvexPolygon { verts }
    }

    /// Axis-aligned rectangle as a polygon.
    pub fn from_aabb(bb: &Aabb) -> Self {
        ConvexPolygon {
            verts: vec![
                bb.min,
                Point::new(bb.max.x, bb.min.y),
                bb.max,
                Point::new(bb.min.x, bb.max.y),
            ],
        }
    }

    fn is_ccw_convex(v: &[Point]) -> bool {
        let n = v.len();
        (0..n).all(|i| orient2d(v[i], v[(i + 1) % n], v[(i + 2) % n]) >= 0.0)
    }

    /// Vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.verts
    }

    /// `true` if the polygon has no interior (fewer than 3 vertices).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.verts.len() < 3
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// `true` if there are no vertices at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Signed area (non-negative for CCW polygons).
    pub fn area(&self) -> f64 {
        let v = &self.verts;
        let n = v.len();
        if n < 3 {
            return 0.0;
        }
        let mut s = 0.0;
        for i in 0..n {
            let a = v[i];
            let b = v[(i + 1) % n];
            s += a.x * b.y - b.x * a.y;
        }
        0.5 * s
    }

    /// `true` if `p` lies in the closed polygon.
    pub fn contains(&self, p: Point) -> bool {
        let v = &self.verts;
        let n = v.len();
        if n < 3 {
            return false;
        }
        (0..n).all(|i| orient2d(v[i], v[(i + 1) % n], p) >= 0.0)
    }

    /// Tight bounding box of the vertices.
    pub fn bbox(&self) -> Aabb {
        Aabb::of_points(&self.verts)
    }

    /// Clips the polygon to the half-plane `line.eval(p) <= 0` (the
    /// *non-positive* side), Sutherland–Hodgman style.
    pub fn clip_halfplane(&self, line: &Line) -> ConvexPolygon {
        let v = &self.verts;
        let n = v.len();
        if n == 0 {
            return ConvexPolygon::empty();
        }
        let mut out: Vec<Point> = Vec::with_capacity(n + 1);
        for i in 0..n {
            let cur = v[i];
            let nxt = v[(i + 1) % n];
            let dc = line.eval(cur);
            let dn = line.eval(nxt);
            if dc <= 0.0 {
                out.push(cur);
            }
            if (dc < 0.0 && dn > 0.0) || (dc > 0.0 && dn < 0.0) {
                let t = dc / (dc - dn);
                out.push(cur.lerp(nxt, t));
            }
        }
        // Remove consecutive (near-)duplicates produced by vertices exactly
        // on the clip line.
        out.dedup_by(|a, b| a.dist2(*b) == 0.0);
        if out.len() >= 2 && out[0].dist2(out[out.len() - 1]) == 0.0 {
            out.pop();
        }
        ConvexPolygon { verts: out }
    }

    /// Intersection of half-planes `{ p : l.eval(p) <= 0 }`, clipped to the
    /// bounding box `universe` (which stands in for the whole plane).
    pub fn halfplane_intersection(lines: &[Line], universe: &Aabb) -> ConvexPolygon {
        let mut poly = ConvexPolygon::from_aabb(universe);
        for l in lines {
            poly = poly.clip_halfplane(l);
            if poly.is_degenerate() {
                return ConvexPolygon::empty();
            }
        }
        poly
    }

    /// Boundary edges as segments.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.verts.len();
        (0..n).map(move |i| Segment::new(self.verts[i], self.verts[(i + 1) % n]))
    }

    /// An interior point (the vertex centroid), `None` when degenerate.
    pub fn interior_point(&self) -> Option<Point> {
        if self.is_degenerate() {
            return None;
        }
        let n = self.verts.len() as f64;
        let (sx, sy) = self
            .verts
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Some(Point::new(sx / n, sy / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Vector;
    use proptest::prelude::*;

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::from_aabb(&Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)))
    }

    #[test]
    fn area_and_contains() {
        let sq = unit_square();
        assert_eq!(sq.area(), 1.0);
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(sq.contains(Point::new(0.0, 0.0))); // boundary
        assert!(!sq.contains(Point::new(1.5, 0.5)));
    }

    #[test]
    fn clip_keeps_nonpositive_side() {
        let sq = unit_square();
        // Half-plane x <= 0.5: line with eval = x - 0.5.
        let l = Line {
            n: Vector::new(1.0, 0.0),
            c: 0.5,
        };
        let clipped = sq.clip_halfplane(&l);
        assert!((clipped.area() - 0.5).abs() < 1e-12);
        assert!(clipped.contains(Point::new(0.25, 0.5)));
        assert!(!clipped.contains(Point::new(0.75, 0.5)));
    }

    #[test]
    fn clip_to_empty() {
        let sq = unit_square();
        let l = Line {
            n: Vector::new(-1.0, 0.0),
            c: -2.0, // eval = -x + 2 <= 0 means x >= 2
        };
        let clipped = sq.clip_halfplane(&l);
        assert!(clipped.is_degenerate());
    }

    #[test]
    fn halfplane_intersection_triangle() {
        // x >= 0, y >= 0, x + y <= 1.
        let lines = vec![
            Line {
                n: Vector::new(-1.0, 0.0),
                c: 0.0,
            },
            Line {
                n: Vector::new(0.0, -1.0),
                c: 0.0,
            },
            Line {
                n: Vector::new(1.0, 1.0),
                c: 1.0,
            },
        ];
        let uni = Aabb::new(Point::new(-10.0, -10.0), Point::new(10.0, 10.0));
        let tri = ConvexPolygon::halfplane_intersection(&lines, &uni);
        assert_eq!(tri.len(), 3);
        assert!((tri.area() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn halfplane_intersection_empty() {
        // x <= 0 and x >= 1 simultaneously.
        let lines = vec![
            Line {
                n: Vector::new(1.0, 0.0),
                c: 0.0,
            },
            Line {
                n: Vector::new(-1.0, 0.0),
                c: -1.0,
            },
        ];
        let uni = Aabb::new(Point::new(-10.0, -10.0), Point::new(10.0, 10.0));
        let p = ConvexPolygon::halfplane_intersection(&lines, &uni);
        assert!(p.is_empty() || p.is_degenerate());
    }

    #[test]
    fn interior_point_inside() {
        let sq = unit_square();
        let ip = sq.interior_point().unwrap();
        assert!(sq.contains(ip));
        assert!(ConvexPolygon::empty().interior_point().is_none());
    }

    proptest! {
        #[test]
        fn prop_clip_area_monotone(
            nx in -1.0f64..1.0, ny in -1.0f64..1.0, c in -2.0f64..2.0,
        ) {
            prop_assume!(nx.abs() + ny.abs() > 1e-6);
            let sq = unit_square();
            let l = Line { n: Vector::new(nx, ny), c };
            let clipped = sq.clip_halfplane(&l);
            prop_assert!(clipped.area() <= sq.area() + 1e-12);
            prop_assert!(clipped.area() >= -1e-12);
        }

        #[test]
        fn prop_clipped_vertices_satisfy_halfplane(
            nx in -1.0f64..1.0, ny in -1.0f64..1.0, c in -2.0f64..2.0,
        ) {
            prop_assume!(nx.abs() + ny.abs() > 1e-6);
            let sq = unit_square();
            let l = Line { n: Vector::new(nx, ny), c };
            let clipped = sq.clip_halfplane(&l);
            for &v in clipped.vertices() {
                prop_assert!(l.eval(v) <= 1e-9);
            }
        }

        #[test]
        fn prop_halfplane_intersection_contains_witness(
            seeds in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 3..12)
        ) {
            // Half-planes all containing the origin must intersect in a region
            // containing the origin.
            let lines: Vec<Line> = seeds.iter().map(|&(x, y)| {
                let n = Vector::new(x, y);
                // eval(origin) = -c <= 0 requires c >= 0.
                Line { n, c: 1.0 + x.abs() + y.abs() }
            }).collect();
            let uni = Aabb::new(Point::new(-100.0, -100.0), Point::new(100.0, 100.0));
            let p = ConvexPolygon::halfplane_intersection(&lines, &uni);
            prop_assert!(p.contains(Point::ORIGIN));
        }
    }
}
