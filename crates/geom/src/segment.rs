//! Line segments and lines, with robust intersection tests.

use crate::bbox::Aabb;
use crate::point::{lex_cmp, Point, Vector};
use crate::predicates::{orient2d, orientation, Orientation};

/// A closed line segment between two endpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

/// An infinite oriented line `{ p : n·p = c }` with unit-independent normal.
///
/// The positive side is `n·p > c`; [`Line::through`] orients so that the
/// positive side is to the left of the direction `b - a`.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Line {
    /// Normal vector (not necessarily unit).
    pub n: Vector,
    /// Offset: the line is `n·p = c`.
    pub c: f64,
}

/// Result of intersecting two segments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SegIntersection {
    /// Segments do not meet.
    None,
    /// Segments meet in a single point.
    Point(Point),
    /// Segments overlap along a collinear sub-segment.
    Overlap(Point, Point),
}

impl Segment {
    /// Creates a segment.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Direction vector `b - a` (not normalized).
    #[inline]
    pub fn dir(&self) -> Vector {
        self.b - self.a
    }

    /// Tight bounding box.
    #[inline]
    pub fn bbox(&self) -> Aabb {
        Aabb::of_points(&[self.a, self.b])
    }

    /// Point at parameter `t` (`a` at 0, `b` at 1).
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// `true` if `p` lies on the closed segment (exact collinearity +
    /// bounding-box check).
    pub fn contains_point(&self, p: Point) -> bool {
        if orientation(self.a, self.b, p) != Orientation::Collinear {
            return false;
        }
        self.bbox().contains(p)
    }

    /// Squared distance from `p` to the closed segment.
    pub fn dist2_to_point(&self, p: Point) -> f64 {
        let d = self.dir();
        let l2 = d.norm2();
        if l2 == 0.0 {
            return p.dist2(self.a);
        }
        let t = ((p - self.a).dot(d) / l2).clamp(0.0, 1.0);
        p.dist2(self.at(t))
    }

    /// Robust segment–segment intersection.
    ///
    /// Orientation signs come from the exact predicate, so the *classification*
    /// (none / point / overlap) is exact; the coordinates of a transversal
    /// intersection point are computed in floating point.
    pub fn intersect(&self, other: &Segment) -> SegIntersection {
        let (p1, p2) = (self.a, self.b);
        let (p3, p4) = (other.a, other.b);

        let d1 = orient2d(p3, p4, p1);
        let d2 = orient2d(p3, p4, p2);
        let d3 = orient2d(p1, p2, p3);
        let d4 = orient2d(p1, p2, p4);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            // Proper crossing: parametric solve.
            let t = d1 / (d1 - d2);
            return SegIntersection::Point(p1.lerp(p2, t));
        }

        // Collinear / endpoint-touching cases.
        if d1 == 0.0 && d2 == 0.0 && d3 == 0.0 && d4 == 0.0 {
            // All collinear: overlap of 1D intervals in lexicographic order.
            let (mut s1, mut e1) = (p1, p2);
            if lex_cmp(s1, e1).is_gt() {
                core::mem::swap(&mut s1, &mut e1);
            }
            let (mut s2, mut e2) = (p3, p4);
            if lex_cmp(s2, e2).is_gt() {
                core::mem::swap(&mut s2, &mut e2);
            }
            let lo = if lex_cmp(s1, s2).is_lt() { s2 } else { s1 };
            let hi = if lex_cmp(e1, e2).is_lt() { e1 } else { e2 };
            return match lex_cmp(lo, hi) {
                core::cmp::Ordering::Less => SegIntersection::Overlap(lo, hi),
                core::cmp::Ordering::Equal => SegIntersection::Point(lo),
                core::cmp::Ordering::Greater => SegIntersection::None,
            };
        }

        // Endpoint touching: one orientation is zero and the endpoint lies on
        // the other segment.
        if d1 == 0.0 && other.bbox().contains(p1) {
            return SegIntersection::Point(p1);
        }
        if d2 == 0.0 && other.bbox().contains(p2) {
            return SegIntersection::Point(p2);
        }
        if d3 == 0.0 && self.bbox().contains(p3) {
            return SegIntersection::Point(p3);
        }
        if d4 == 0.0 && self.bbox().contains(p4) {
            return SegIntersection::Point(p4);
        }
        SegIntersection::None
    }
}

impl Line {
    /// Line through `a` and `b`, positive side to the left of `b - a`.
    #[inline]
    pub fn through(a: Point, b: Point) -> Self {
        let d = b - a;
        let n = d.perp();
        Line {
            n,
            c: n.dot(a.to_vector()),
        }
    }

    /// Perpendicular bisector of `p` and `q`, positive side containing `q`.
    ///
    /// The locus `{ x : d(x,p) = d(x,q) }`; points with `eval > 0` are
    /// strictly closer to `q`.
    #[inline]
    pub fn bisector(p: Point, q: Point) -> Self {
        // |x-p|^2 = |x-q|^2  <=>  2 (q - p)·x = |q|^2 - |p|^2.
        let n = 2.0 * (q - p);
        Line {
            n,
            c: q.to_vector().norm2() - p.to_vector().norm2(),
        }
    }

    /// Signed evaluation `n·p - c` (positive on the positive side).
    #[inline]
    pub fn eval(&self, p: Point) -> f64 {
        self.n.dot(p.to_vector()) - self.c
    }

    /// Intersection point of two lines, `None` if parallel.
    pub fn intersect(&self, other: &Line) -> Option<Point> {
        let det = self.n.cross(other.n);
        if det == 0.0 {
            return None;
        }
        // Solve [n1; n2] x = [c1; c2] by Cramer's rule. The cross product
        // n1 × n2 = n1.x n2.y - n1.y n2.x is the determinant.
        let x = (self.c * other.n.y - other.c * self.n.y) / det;
        let y = (self.n.x * other.c - other.n.x * self.c) / det;
        Some(Point::new(x, y))
    }

    /// Clips the line to a bounding box, returning the chord (or `None` if
    /// the line misses the box).
    pub fn clip_to_box(&self, bb: &Aabb) -> Option<Segment> {
        // Parametrize as p0 + t d, with d along the line.
        let d = Vector::new(self.n.y, -self.n.x);
        let n2 = self.n.norm2();
        if n2 == 0.0 {
            return None;
        }
        let p0 = Point::ORIGIN + self.n * (self.c / n2);
        // Liang–Barsky style clipping. Each clip parameter remembers the wall
        // (axis + coordinate) that bound it: `p0 + t d` rounds, and downstream
        // arrangement code relies on clipped endpoints lying *exactly* on the
        // box boundary so box edges get split where chords terminate.
        let (mut t0, mut t1) = (f64::NEG_INFINITY, f64::INFINITY);
        let mut w0: Option<(u8, f64)> = None;
        let mut w1: Option<(u8, f64)> = None;
        let checks = [
            (
                0u8,
                d.x,
                bb.min.x - p0.x,
                bb.max.x - p0.x,
                bb.min.x,
                bb.max.x,
            ),
            (
                1u8,
                d.y,
                bb.min.y - p0.y,
                bb.max.y - p0.y,
                bb.min.y,
                bb.max.y,
            ),
        ];
        for (axis, dv, lo, hi, wlo, whi) in checks {
            if dv == 0.0 {
                if lo > 0.0 || hi < 0.0 {
                    return None;
                }
            } else {
                let (ta, wa, tb, wb) = if dv > 0.0 {
                    (lo / dv, wlo, hi / dv, whi)
                } else {
                    (hi / dv, whi, lo / dv, wlo)
                };
                if ta > t0 {
                    t0 = ta;
                    w0 = Some((axis, wa));
                }
                if tb < t1 {
                    t1 = tb;
                    w1 = Some((axis, wb));
                }
            }
        }
        if t0 > t1 {
            return None;
        }
        let pin = |mut p: Point, wall: Option<(u8, f64)>| -> Point {
            match wall {
                Some((0, w)) => p.x = w,
                Some((_, w)) => p.y = w,
                None => {}
            }
            p.x = p.x.clamp(bb.min.x, bb.max.x);
            p.y = p.y.clamp(bb.min.y, bb.max.y);
            p
        };
        Some(Segment::new(pin(p0 + d * t0, w0), pin(p0 + d * t1, w1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn proper_crossing() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let s2 = Segment::new(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        match s1.intersect(&s2) {
            SegIntersection::Point(p) => assert!(p.dist(Point::new(1.0, 1.0)) < 1e-12),
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_segments() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(0.0, 1.0), Point::new(1.0, 1.0));
        assert_eq!(s1.intersect(&s2), SegIntersection::None);
    }

    #[test]
    fn endpoint_touch() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(1.0, 0.0), Point::new(2.0, 5.0));
        assert_eq!(
            s1.intersect(&s2),
            SegIntersection::Point(Point::new(1.0, 0.0))
        );
        // T-junction.
        let s3 = Segment::new(Point::new(0.5, 0.0), Point::new(0.5, 3.0));
        assert_eq!(
            s1.intersect(&s3),
            SegIntersection::Point(Point::new(0.5, 0.0))
        );
    }

    #[test]
    fn collinear_overlap() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let s2 = Segment::new(Point::new(1.0, 0.0), Point::new(3.0, 0.0));
        assert_eq!(
            s1.intersect(&s2),
            SegIntersection::Overlap(Point::new(1.0, 0.0), Point::new(2.0, 0.0))
        );
        // Collinear but disjoint.
        let s3 = Segment::new(Point::new(5.0, 0.0), Point::new(6.0, 0.0));
        assert_eq!(s1.intersect(&s3), SegIntersection::None);
        // Collinear touching in one point.
        let s4 = Segment::new(Point::new(2.0, 0.0), Point::new(6.0, 0.0));
        assert_eq!(
            s1.intersect(&s4),
            SegIntersection::Point(Point::new(2.0, 0.0))
        );
    }

    #[test]
    fn bisector_line_properties() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(4.0, 0.0);
        let b = Line::bisector(p, q);
        assert!(b.eval(Point::new(2.0, 7.0)).abs() < 1e-12);
        assert!(b.eval(q) > 0.0); // positive side contains q
        assert!(b.eval(p) < 0.0);
    }

    #[test]
    fn line_intersection() {
        let l1 = Line::through(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let l2 = Line::through(Point::new(2.0, 0.0), Point::new(2.0, 5.0));
        let p = l1.intersect(&l2).unwrap();
        assert!(p.dist(Point::new(2.0, 2.0)) < 1e-12);
        // Parallel lines.
        let l3 = Line::through(Point::new(0.0, 1.0), Point::new(1.0, 2.0));
        assert!(l1.intersect(&l3).is_none());
    }

    #[test]
    fn clip_line_to_box() {
        let bb = Aabb::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        let l = Line::bisector(Point::new(-1.0, 0.0), Point::new(1.0, 0.0)); // x = 0
        let s = l.clip_to_box(&bb).unwrap();
        assert!(s.a.x.abs() < 1e-12 && s.b.x.abs() < 1e-12);
        assert!((s.length() - 2.0).abs() < 1e-12);
        // A line missing the box.
        let l2 = Line::bisector(Point::new(0.0, 0.0), Point::new(10.0, 0.0)); // x = 5
        assert!(l2.clip_to_box(&bb).is_none());
    }

    #[test]
    fn dist_to_segment() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.dist2_to_point(Point::new(5.0, 3.0)), 9.0);
        assert_eq!(s.dist2_to_point(Point::new(-3.0, 4.0)), 25.0);
        assert_eq!(s.dist2_to_point(Point::new(13.0, 4.0)), 25.0);
    }

    proptest! {
        #[test]
        fn prop_intersection_point_lies_on_both(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0,
            cx in -10.0f64..10.0, cy in -10.0f64..10.0,
            dx in -10.0f64..10.0, dy in -10.0f64..10.0,
        ) {
            let s1 = Segment::new(Point::new(ax, ay), Point::new(bx, by));
            let s2 = Segment::new(Point::new(cx, cy), Point::new(dx, dy));
            if let SegIntersection::Point(p) = s1.intersect(&s2) {
                prop_assert!(s1.dist2_to_point(p) < 1e-12);
                prop_assert!(s2.dist2_to_point(p) < 1e-12);
            }
        }

        #[test]
        fn prop_intersect_symmetric(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0,
            cx in -10.0f64..10.0, cy in -10.0f64..10.0,
            dx in -10.0f64..10.0, dy in -10.0f64..10.0,
        ) {
            let s1 = Segment::new(Point::new(ax, ay), Point::new(bx, by));
            let s2 = Segment::new(Point::new(cx, cy), Point::new(dx, dy));
            let r12 = s1.intersect(&s2);
            let r21 = s2.intersect(&s1);
            prop_assert_eq!(
                matches!(r12, SegIntersection::None),
                matches!(r21, SegIntersection::None)
            );
        }

        #[test]
        fn prop_bisector_equidistant(
            px in -10.0f64..10.0, py in -10.0f64..10.0,
            qx in -10.0f64..10.0, qy in -10.0f64..10.0,
            t in -5.0f64..5.0,
        ) {
            let p = Point::new(px, py);
            let q = Point::new(qx, qy);
            prop_assume!(p.dist(q) > 1e-6);
            let b = Line::bisector(p, q);
            // Walk along the bisector from the midpoint.
            let m = p.midpoint(q);
            let d = Vector::new(b.n.y, -b.n.x).normalized().unwrap();
            let x = m + d * t;
            prop_assert!((x.dist(p) - x.dist(q)).abs() < 1e-9 * (1.0 + x.dist(p)));
        }
    }
}
