//! Exact area of the intersection of a disk with a convex polygon.
//!
//! Needed for the distance cdf of points uniformly distributed on convex
//! polygonal supports (Theorem 2.6 allows any constant-complexity
//! semialgebraic uncertainty region; convex polygons are the practical
//! instantiation). The area is computed by the classic triangle-fan
//! decomposition: summing, over directed polygon edges `(a, b)`, the signed
//! area of `disk ∩ triangle(center, a, b)`, each of which decomposes into
//! plain triangles and circular sectors.

use crate::point::{Point, Vector};
use crate::polygon::ConvexPolygon;

/// Signed angle from `a` to `b` in `(-π, π]`.
#[inline]
fn signed_angle(a: Vector, b: Vector) -> f64 {
    a.cross(b).atan2(a.dot(b))
}

/// Intersections of the segment `a + t (b - a)`, `t ∈ [0, 1]`, with the
/// circle of radius `r` centered at the origin, in increasing `t`.
fn segment_circle_ts(a: Vector, b: Vector, r: f64) -> Vec<f64> {
    let d = b - a;
    let aa = d.norm2();
    if aa == 0.0 {
        return Vec::new();
    }
    let bb = 2.0 * a.dot(d);
    let cc = a.norm2() - r * r;
    let disc = bb * bb - 4.0 * aa * cc;
    if disc <= 0.0 {
        return Vec::new();
    }
    let sq = disc.sqrt();
    let mut out = Vec::new();
    for t in [(-bb - sq) / (2.0 * aa), (-bb + sq) / (2.0 * aa)] {
        if t > 0.0 && t < 1.0 {
            out.push(t);
        }
    }
    out
}

/// Signed area of `disk(origin, r) ∩ triangle(origin, a, b)`.
///
/// The sign follows `cross(a, b)` (positive when `(origin, a, b)` is CCW).
fn disk_triangle_signed_area(a: Vector, b: Vector, r: f64) -> f64 {
    let r2 = r * r;
    let a_in = a.norm2() <= r2;
    let b_in = b.norm2() <= r2;
    if a_in && b_in {
        return 0.5 * a.cross(b);
    }
    let ts = segment_circle_ts(a, b, r);
    let lerp = |t: f64| a + (b - a) * t;
    match (a_in, b_in, ts.len()) {
        // Both outside, chord not crossed: pure sector.
        (false, false, 0) => 0.5 * r2 * signed_angle(a, b),
        // Both outside, segment dips into the disk between t1 and t2:
        // sector(a -> p1) + triangle(0, p1, p2) + sector(p2 -> b).
        (false, false, 2) => {
            let p1 = lerp(ts[0]);
            let p2 = lerp(ts[1]);
            0.5 * r2 * signed_angle(a, p1) + 0.5 * p1.cross(p2) + 0.5 * r2 * signed_angle(p2, b)
        }
        // a inside, b outside: triangle(0, a, p) + sector(p -> b). If no
        // interior crossing exists, `a` lies (numerically) *on* the circle
        // and the edge immediately leaves the disk: the correct limit is a
        // pure sector, not the full triangle.
        (true, false, _) => match ts.first() {
            Some(&t) => {
                let p = lerp(t);
                0.5 * a.cross(p) + 0.5 * r2 * signed_angle(p, b)
            }
            None => 0.5 * r2 * signed_angle(a, b),
        },
        // a outside, b inside: sector(a -> p) + triangle(0, p, b). With no
        // interior crossing, `b` is on the circle and the edge is outside
        // until its endpoint: again a pure sector in the limit.
        (false, true, _) => match ts.first() {
            Some(&t) => {
                let p = lerp(t);
                0.5 * r2 * signed_angle(a, p) + 0.5 * p.cross(b)
            }
            None => 0.5 * r2 * signed_angle(a, b),
        },
        // Tangential grazes: treat as pure sector.
        (false, false, _) => 0.5 * r2 * signed_angle(a, b),
        (true, true, _) => unreachable!("handled above"),
    }
}

/// Area of the intersection of the disk `(center q, radius r)` with a
/// convex polygon (CCW vertices). Exact up to rounding.
pub fn circle_polygon_area(q: Point, r: f64, poly: &ConvexPolygon) -> f64 {
    if r <= 0.0 || poly.is_degenerate() {
        return 0.0;
    }
    let verts = poly.vertices();
    let n = verts.len();
    let mut total = 0.0;
    for i in 0..n {
        let a = verts[i] - q;
        let b = verts[(i + 1) % n] - q;
        total += disk_triangle_signed_area(a, b, r);
    }
    total.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::Aabb;
    use core::f64::consts::PI;
    use proptest::prelude::*;

    fn square(cx: f64, cy: f64, half: f64) -> ConvexPolygon {
        ConvexPolygon::from_aabb(&Aabb::new(
            Point::new(cx - half, cy - half),
            Point::new(cx + half, cy + half),
        ))
    }

    #[test]
    fn disk_inside_polygon() {
        let poly = square(0.0, 0.0, 10.0);
        let v = circle_polygon_area(Point::new(1.0, 2.0), 1.5, &poly);
        assert!((v - PI * 2.25).abs() < 1e-12);
    }

    #[test]
    fn polygon_inside_disk() {
        let poly = square(0.0, 0.0, 1.0);
        let v = circle_polygon_area(Point::new(0.5, 0.0), 10.0, &poly);
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint() {
        let poly = square(0.0, 0.0, 1.0);
        assert_eq!(circle_polygon_area(Point::new(10.0, 0.0), 2.0, &poly), 0.0);
    }

    #[test]
    fn half_overlap_on_edge() {
        // Circle centered on the square's edge, small enough to stay within
        // the edge's span: half the disk inside.
        let poly = square(0.0, 0.0, 2.0);
        let v = circle_polygon_area(Point::new(2.0, 0.0), 0.5, &poly);
        assert!((v - PI * 0.125).abs() < 1e-12, "v = {v}");
        // Quarter at a corner.
        let v = circle_polygon_area(Point::new(2.0, 2.0), 0.5, &poly);
        assert!((v - PI * 0.0625).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn matches_circle_rect_formula() {
        // Cross-check against the independent rectangle implementation in
        // unn-distr... which lives downstream; instead check against dense
        // grid sampling on assorted configurations.
        let poly = ConvexPolygon::from_ccw_vertices(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(3.0, 4.0),
            Point::new(-1.0, 3.0),
        ]);
        for &(qx, qy, r) in &[
            (1.0, 1.0, 1.0),
            (-2.0, 0.0, 2.5),
            (5.0, 5.0, 3.0),
            (2.0, 2.0, 10.0),
            (0.0, 0.0, 0.5),
        ] {
            let q = Point::new(qx, qy);
            let analytic = circle_polygon_area(q, r, &poly);
            // Grid estimate over the polygon bbox.
            let bb = poly.bbox();
            let n = 500;
            let mut hits = 0u64;
            for i in 0..n {
                for j in 0..n {
                    let p = Point::new(
                        bb.min.x + bb.width() * (i as f64 + 0.5) / n as f64,
                        bb.min.y + bb.height() * (j as f64 + 0.5) / n as f64,
                    );
                    if poly.contains(p) && p.dist2(q) <= r * r {
                        hits += 1;
                    }
                }
            }
            let approx = hits as f64 * bb.width() * bb.height() / (n * n) as f64;
            assert!(
                (analytic - approx).abs() < 0.02 * (1.0 + approx),
                "q=({qx},{qy}) r={r}: analytic={analytic} grid={approx}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_area_bounds(
            qx in -6.0f64..6.0, qy in -6.0f64..6.0, r in 0.01f64..8.0,
        ) {
            let poly = ConvexPolygon::from_ccw_vertices(vec![
                Point::new(-2.0, -1.0),
                Point::new(2.0, -2.0),
                Point::new(3.0, 2.0),
                Point::new(0.0, 3.0),
            ]);
            let v = circle_polygon_area(Point::new(qx, qy), r, &poly);
            prop_assert!(v >= -1e-12);
            prop_assert!(v <= PI * r * r + 1e-9);
            prop_assert!(v <= poly.area() + 1e-9);
        }

        #[test]
        fn prop_monotone_in_r(qx in -6.0f64..6.0, qy in -6.0f64..6.0) {
            let poly = ConvexPolygon::from_ccw_vertices(vec![
                Point::new(-2.0, -1.0),
                Point::new(2.0, -2.0),
                Point::new(3.0, 2.0),
                Point::new(0.0, 3.0),
            ]);
            let q = Point::new(qx, qy);
            // Sweep up to a radius that surely covers the polygon from q.
            let r_max = poly
                .vertices()
                .iter()
                .map(|v| v.dist(q))
                .fold(0.0f64, f64::max)
                + 1.0;
            let mut prev = 0.0;
            for i in 1..=25 {
                let r = r_max * i as f64 / 25.0;
                let v = circle_polygon_area(q, r, &poly);
                prop_assert!(v + 1e-9 >= prev, "not monotone at r={r}");
                prev = v;
            }
            // Saturates at the polygon area.
            prop_assert!((prev - poly.area()).abs() < 1e-6);
        }
    }
}
