//! Batched structure-of-arrays distance kernels.
//!
//! The spatial indexes store leaf points as separate `x[]`/`y[]` arrays and
//! scan them in fixed-width lane batches ([`LANES`]) that the compiler can
//! autovectorize. The contract that makes the batched paths drop-in
//! replacements for the scalar ones is **bit-identity**: every lane performs
//! exactly the scalar operation sequence on exactly the scalar operands —
//! no reassociation, no FMA contraction, no reduced-precision shortcuts —
//! so a batched kernel's lane `l` output is the same f64, bit for bit, as
//! the scalar kernel applied to element `l`.
//!
//! Two op-order equivalences the kernels rely on (both exact in IEEE 754):
//!
//! * `Point::dist` computes `dx = p.x - q.x`; a kernel computing
//!   `q.x - p.x` would still square to the identical product, since
//!   `(-x)·(-x) = x·x` exactly. The kernels here keep the
//!   stored-minus-query order anyway, matching `p.dist(q)` literally.
//! * [`Aabb::max_dist`](crate::Aabb::max_dist) is replicated operation for
//!   operation in [`AabbSoA::max_dist`].

use crate::bbox::Aabb;
use crate::point::Point;

/// Lane width of the batched kernels. Four f64 lanes fill one AVX2 register
/// (or two NEON/SSE2 registers); the loops are written so the backend can
/// also fuse pairs of batches on wider targets.
pub const LANES: usize = 4;

/// Distances from `(qx, qy)` to the first [`LANES`] points of `xs`/`ys`,
/// lane `l` computed exactly as `Point::new(xs[l], ys[l]).dist(q)`:
/// `dx = xs[l] - qx; dy = ys[l] - qy; sqrt(dx·dx + dy·dy)`.
///
/// Both slices must hold at least [`LANES`] elements.
#[inline]
pub fn dist_lanes(xs: &[f64], ys: &[f64], qx: f64, qy: f64) -> [f64; LANES] {
    let mut out = [0.0f64; LANES];
    for l in 0..LANES {
        let dx = xs[l] - qx;
        let dy = ys[l] - qy;
        out[l] = (dx * dx + dy * dy).sqrt();
    }
    out
}

/// Axis-aligned boxes in structure-of-arrays layout: four parallel `f64`
/// arrays instead of a `Vec<Aabb>`, so gathered per-box distance
/// evaluations ([`AabbSoA::max_dist_lanes`]) read four coordinate streams
/// instead of strided 32-byte structs.
///
/// Every per-box query replicates the corresponding [`Aabb`] kernel's
/// operation order exactly, so results are bit-identical to the AoS path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AabbSoA {
    min_x: Vec<f64>,
    min_y: Vec<f64>,
    max_x: Vec<f64>,
    max_y: Vec<f64>,
}

impl AabbSoA {
    /// An empty set of boxes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts a slice of boxes into SoA layout.
    pub fn from_boxes(boxes: &[Aabb]) -> Self {
        let mut s = AabbSoA {
            min_x: Vec::with_capacity(boxes.len()),
            min_y: Vec::with_capacity(boxes.len()),
            max_x: Vec::with_capacity(boxes.len()),
            max_y: Vec::with_capacity(boxes.len()),
        };
        for b in boxes {
            s.push(*b);
        }
        s
    }

    /// Appends one box.
    pub fn push(&mut self, b: Aabb) {
        self.min_x.push(b.min.x);
        self.min_y.push(b.min.y);
        self.max_x.push(b.max.x);
        self.max_y.push(b.max.y);
    }

    /// Number of boxes.
    #[inline]
    pub fn len(&self) -> usize {
        self.min_x.len()
    }

    /// `true` when no boxes are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x.is_empty()
    }

    /// Box `i` reassembled as an [`Aabb`].
    #[inline]
    pub fn get(&self, i: usize) -> Aabb {
        Aabb {
            min: Point::new(self.min_x[i], self.min_y[i]),
            max: Point::new(self.max_x[i], self.max_y[i]),
        }
    }

    /// Center of box `i` (same arithmetic as [`Aabb::center`]).
    #[inline]
    pub fn center(&self, i: usize) -> Point {
        self.get(i).center()
    }

    /// `Aabb::max_dist` for box `i`, operation for operation:
    /// `dx = max(|q.x - min.x|, |q.x - max.x|)`, likewise `dy`,
    /// then `sqrt(dx·dx + dy·dy)`.
    #[inline]
    pub fn max_dist(&self, i: usize, q: Point) -> f64 {
        let dx = (q.x - self.min_x[i]).abs().max((q.x - self.max_x[i]).abs());
        let dy = (q.y - self.min_y[i]).abs().max((q.y - self.max_y[i]).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// [`AabbSoA::max_dist`] gathered over the first [`LANES`] entries of
    /// `idx`: lane `l` evaluates box `idx[l]` with the exact scalar
    /// operation sequence. `idx` must hold at least [`LANES`] in-range
    /// indices.
    #[inline]
    pub fn max_dist_lanes(&self, idx: &[u32], qx: f64, qy: f64) -> [f64; LANES] {
        let mut out = [0.0f64; LANES];
        for l in 0..LANES {
            let i = idx[l] as usize;
            let dx = (qx - self.min_x[i]).abs().max((qx - self.max_x[i]).abs());
            let dy = (qy - self.min_y[i]).abs().max((qy - self.max_y[i]).abs());
            out[l] = (dx * dx + dy * dy).sqrt();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_lanes_matches_point_dist_bitwise() {
        let xs = [1.5, -2.25, 1e308, 5e-324];
        let ys = [-3.75, 0.0, -1e308, -5e-324];
        let q = Point::new(0.3, -0.7);
        let got = dist_lanes(&xs, &ys, q.x, q.y);
        for l in 0..LANES {
            let want = Point::new(xs[l], ys[l]).dist(q);
            assert_eq!(got[l].to_bits(), want.to_bits(), "lane {l}");
        }
    }

    #[test]
    fn soa_max_dist_matches_aabb_bitwise() {
        let boxes = vec![
            Aabb::new(Point::new(-1.0, -2.0), Point::new(3.0, 4.0)),
            Aabb::new(Point::new(0.0, 0.0), Point::new(0.0, 0.0)),
            Aabb::new(Point::new(-1e308, -1e308), Point::new(1e308, 1e308)),
            Aabb::new(Point::new(1e-308, 1e-308), Point::new(2e-308, 3e-308)),
            Aabb::new(Point::new(7.0, -7.0), Point::new(7.5, -6.5)),
        ];
        let soa = AabbSoA::from_boxes(&boxes);
        assert_eq!(soa.len(), boxes.len());
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(soa.get(i), *b);
            for q in [Point::new(0.1, 0.2), Point::new(-50.0, 3.0), Point::ORIGIN] {
                assert_eq!(soa.max_dist(i, q).to_bits(), b.max_dist(q).to_bits());
            }
        }
        let idx = [4u32, 0, 2, 1];
        let q = Point::new(2.0, -3.0);
        let got = soa.max_dist_lanes(&idx, q.x, q.y);
        for l in 0..LANES {
            assert_eq!(
                got[l].to_bits(),
                boxes[idx[l] as usize].max_dist(q).to_bits(),
                "lane {l}"
            );
        }
    }

    #[test]
    fn push_and_center_round_trip() {
        let mut soa = AabbSoA::new();
        assert!(soa.is_empty());
        let b = Aabb::new(Point::new(1.0, 2.0), Point::new(3.0, 6.0));
        soa.push(b);
        assert_eq!(soa.len(), 1);
        assert_eq!(soa.center(0), b.center());
    }
}
