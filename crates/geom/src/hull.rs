//! Convex hulls (Andrew's monotone chain) and farthest-point queries.

use crate::point::{lex_cmp, Point};
use crate::predicates::orient2d;

/// Convex hull of a point set, in counter-clockwise order starting from the
/// lexicographically smallest point. Collinear interior points are removed;
/// duplicate points are merged.
///
/// Degenerate inputs: an empty slice yields an empty hull, a single point a
/// 1-point hull, and collinear input the two extreme points.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| lex_cmp(*a, *b));
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    hull
}

/// Maximum distance from `q` to any point of `points` (the paper's
/// `Δ_i(q)` for a discrete uncertain point), by linear scan.
///
/// For repeated queries against the same set, build the hull once and use
/// [`farthest_on_hull`].
pub fn farthest_dist(points: &[Point], q: Point) -> f64 {
    points
        .iter()
        .map(|p| p.dist2(q))
        .fold(0.0f64, f64::max)
        .sqrt()
}

/// Maximum distance from `q` to a convex polygon given by its vertices.
///
/// The farthest point of a convex set from any query is a vertex; this scans
/// the (typically few) hull vertices.
pub fn farthest_on_hull(hull: &[Point], q: Point) -> f64 {
    farthest_dist(hull, q)
}

/// Minimum distance from `q` to any point of `points` (the paper's
/// `δ_i(q)` for a discrete uncertain point), by linear scan.
pub fn nearest_dist(points: &[Point], q: Point) -> f64 {
    points
        .iter()
        .map(|p| p.dist2(q))
        .fold(f64::INFINITY, f64::min)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hull_of_square_with_interior() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5),
            Point::new(0.25, 0.75),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert_eq!(h[0], Point::new(0.0, 0.0)); // lexicographic start
    }

    #[test]
    fn hull_degenerate_cases() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 2.0)]).len(), 1);
        // Collinear points collapse to extremes.
        let col: Vec<Point> = (0..5).map(|i| Point::new(i as f64, i as f64)).collect();
        let h = convex_hull(&col);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0], Point::new(0.0, 0.0));
        assert_eq!(h[1], Point::new(4.0, 4.0));
        // Duplicates merge.
        let dup = [Point::new(1.0, 1.0), Point::new(1.0, 1.0)];
        assert_eq!(convex_hull(&dup).len(), 1);
    }

    #[test]
    fn hull_is_ccw() {
        let pts: Vec<Point> = (0..20)
            .map(|i| {
                let t = i as f64;
                Point::new((t * 0.7).sin() * 5.0, (t * 1.3).cos() * 3.0)
            })
            .collect();
        let h = convex_hull(&pts);
        assert!(h.len() >= 3);
        for i in 0..h.len() {
            let a = h[i];
            let b = h[(i + 1) % h.len()];
            let c = h[(i + 2) % h.len()];
            assert!(orient2d(a, b, c) > 0.0, "not strictly convex CCW at {i}");
        }
    }

    #[test]
    fn farthest_and_nearest() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 4.0),
        ];
        let q = Point::new(0.0, 0.0);
        assert_eq!(farthest_dist(&pts, q), 4.0);
        assert_eq!(nearest_dist(&pts, q), 0.0);
        let q2 = Point::new(-1.0, 0.0);
        assert_eq!(nearest_dist(&pts, q2), 1.0);
        assert_eq!(farthest_dist(&pts, q2), 17f64.sqrt());
    }

    proptest! {
        #[test]
        fn prop_all_points_inside_hull(
            pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..40)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let h = convex_hull(&pts);
            prop_assume!(h.len() >= 3);
            for &p in &pts {
                for i in 0..h.len() {
                    let a = h[i];
                    let b = h[(i + 1) % h.len()];
                    prop_assert!(orient2d(a, b, p) >= 0.0, "point {p:?} outside edge {i}");
                }
            }
        }

        #[test]
        fn prop_farthest_is_on_hull(
            pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..40),
            qx in -200.0f64..200.0, qy in -200.0f64..200.0,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let h = convex_hull(&pts);
            let q = Point::new(qx, qy);
            prop_assert!((farthest_dist(&pts, q) - farthest_on_hull(&h, q)).abs() < 1e-9);
        }
    }
}
