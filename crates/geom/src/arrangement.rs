//! Planar subdivisions induced by sets of segments.
//!
//! [`Arrangement::build`] takes a soup of segments, computes all pairwise
//! intersections (grid-accelerated), splits segments at intersection points,
//! snaps coincident endpoints into shared vertices, and extracts the
//! half-edge structure and face cycles of the induced planar subdivision.
//!
//! This is the workhorse behind two paper structures:
//!
//! * the point-location subdivision of the nonzero Voronoi diagram
//!   `𝒱≠0(𝒫)` (Theorem 2.11), built from adaptively polygonalized `γ_i`
//!   curves, and
//! * the probabilistic Voronoi diagram `𝒱_Pr(𝒫)` (Theorem 4.2), built from
//!   bisector lines clipped to a bounding box.
//!
//! Faces are identified by their outer cycles: every *bounded* face is traced
//! counter-clockwise (positive signed area) by the cycle-extraction rule
//! `next(h) = CCW-predecessor of twin(h) around head(h)`. Point location
//! returns the innermost positive cycle containing the query, which is the
//! face owning the point (cycles form a laminar family).

use crate::bbox::Aabb;
use crate::point::{Point, Vector};
use crate::segment::{SegIntersection, Segment};

/// A face of the arrangement (a bounded cell).
#[derive(Clone, Debug)]
pub struct Face {
    /// Outer boundary as a CCW-ordered vertex loop.
    pub boundary: Vec<u32>,
    /// Signed area of the outer cycle (positive).
    pub area: f64,
    /// Bounding box of the outer cycle.
    pub bbox: Aabb,
}

/// A planar subdivision induced by input segments.
#[derive(Clone, Debug, Default)]
pub struct Arrangement {
    verts: Vec<Point>,
    /// Undirected edges as vertex-index pairs.
    edges: Vec<(u32, u32)>,
    faces: Vec<Face>,
    /// Cycles with non-positive area (hole boundaries / outer walks).
    negative_cycles: usize,
}

/// Merges points within `snap` distance into canonical vertices.
struct VertexPool {
    snap: f64,
    grid: std::collections::HashMap<(i64, i64), Vec<u32>>,
    verts: Vec<Point>,
}

impl VertexPool {
    fn new(snap: f64) -> Self {
        VertexPool {
            snap,
            grid: std::collections::HashMap::new(),
            verts: Vec::new(),
        }
    }

    fn key(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.snap).round() as i64,
            (p.y / self.snap).round() as i64,
        )
    }

    fn insert(&mut self, p: Point) -> u32 {
        let (kx, ky) = self.key(p);
        let snap2 = self.snap * self.snap;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(ids) = self.grid.get(&(kx + dx, ky + dy)) {
                    for &id in ids {
                        if self.verts[id as usize].dist2(p) <= snap2 {
                            return id;
                        }
                    }
                }
            }
        }
        let id = self.verts.len() as u32;
        self.verts.push(p);
        self.grid.entry((kx, ky)).or_default().push(id);
        id
    }
}

impl Arrangement {
    /// Builds the subdivision induced by `segments`.
    ///
    /// `snap` is the vertex-merging tolerance; pass a value safely below the
    /// minimum feature size of the input (e.g. `1e-9 *` the coordinate
    /// scale). Zero-length and duplicate sub-segments are dropped.
    pub fn build(segments: &[Segment], snap: f64) -> Arrangement {
        assert!(snap > 0.0, "snap tolerance must be positive");
        let splits = Self::find_splits(segments);

        // Split each segment at its recorded parameters and pool vertices.
        let mut pool = VertexPool::new(snap);
        let mut edge_set: std::collections::HashSet<(u32, u32)> = Default::default();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            let mut ts = splits[i].clone();
            ts.push(0.0);
            ts.push(1.0);
            ts.sort_by(f64::total_cmp);
            ts.dedup();
            let mut prev = pool.insert(seg.at(ts[0]));
            for &t in &ts[1..] {
                let cur = pool.insert(seg.at(t));
                if cur != prev {
                    let key = (prev.min(cur), prev.max(cur));
                    if edge_set.insert(key) {
                        edges.push(key);
                    }
                }
                prev = cur;
            }
        }

        let mut arr = Arrangement {
            verts: pool.verts,
            edges,
            faces: Vec::new(),
            negative_cycles: 0,
        };
        arr.extract_faces();
        arr
    }

    /// Grid-accelerated pairwise intersection: returns, per input segment,
    /// the sorted split parameters in `(0, 1)`.
    fn find_splits(segments: &[Segment]) -> Vec<Vec<f64>> {
        let n = segments.len();
        let mut splits: Vec<Vec<f64>> = vec![Vec::new(); n];
        if n == 0 {
            return splits;
        }
        // Grid cell size: tuned to average segment extent.
        let mut bb = Aabb::EMPTY;
        let mut total_len = 0.0;
        for s in segments {
            bb.insert(s.a);
            bb.insert(s.b);
            total_len += s.length();
        }
        let avg = (total_len / n as f64).max(1e-12);
        let cell = avg.max((bb.width().max(bb.height()) / 256.0).max(1e-12));
        let cell_of = |p: Point| -> (i64, i64) {
            (
                ((p.x - bb.min.x) / cell).floor() as i64,
                ((p.y - bb.min.y) / cell).floor() as i64,
            )
        };
        let mut grid: std::collections::HashMap<(i64, i64), Vec<u32>> = Default::default();
        for (i, s) in segments.iter().enumerate() {
            let (x0, y0) = cell_of(Point::new(s.bbox().min.x, s.bbox().min.y));
            let (x1, y1) = cell_of(Point::new(s.bbox().max.x, s.bbox().max.y));
            for cx in x0..=x1 {
                for cy in y0..=y1 {
                    grid.entry((cx, cy)).or_default().push(i as u32);
                }
            }
        }
        let mut tested: std::collections::HashSet<(u32, u32)> = Default::default();
        let record = |idx: usize, seg: &Segment, p: Point, out: &mut Vec<Vec<f64>>| {
            let d = seg.dir();
            let l2 = d.norm2();
            if l2 == 0.0 {
                return;
            }
            let t = (p - seg.a).dot(d) / l2;
            if t > 1e-12 && t < 1.0 - 1e-12 {
                out[idx].push(t);
            }
        };
        for bucket in grid.values() {
            for (ai, &a) in bucket.iter().enumerate() {
                for &b in &bucket[ai + 1..] {
                    let key = (a.min(b), a.max(b));
                    if !tested.insert(key) {
                        continue;
                    }
                    let (sa, sb) = (&segments[a as usize], &segments[b as usize]);
                    if !sa.bbox().intersects(&sb.bbox()) {
                        continue;
                    }
                    match sa.intersect(sb) {
                        SegIntersection::None => {}
                        SegIntersection::Point(p) => {
                            record(a as usize, sa, p, &mut splits);
                            record(b as usize, sb, p, &mut splits);
                        }
                        SegIntersection::Overlap(p, q) => {
                            for x in [p, q] {
                                record(a as usize, sa, x, &mut splits);
                                record(b as usize, sb, x, &mut splits);
                            }
                        }
                    }
                }
            }
        }
        splits
    }

    /// Builds half-edges, sorts them angularly around each vertex, and
    /// extracts face cycles.
    fn extract_faces(&mut self) {
        let verts = &self.verts;
        let edges = &self.edges;
        let ne = edges.len();
        // Half-edge 2e = u->v, 2e+1 = v->u.
        let origin = |h: usize| -> u32 {
            let (u, v) = edges[h / 2];
            if h.is_multiple_of(2) {
                u
            } else {
                v
            }
        };
        let head = |h: usize| -> u32 {
            let (u, v) = edges[h / 2];
            if h.is_multiple_of(2) {
                v
            } else {
                u
            }
        };

        // Outgoing half-edges per vertex, sorted CCW by angle.
        let mut outgoing: Vec<Vec<u32>> = vec![Vec::new(); verts.len()];
        for h in 0..2 * ne {
            outgoing[origin(h) as usize].push(h as u32);
        }
        for (v, out) in outgoing.iter_mut().enumerate() {
            let vp = verts[v];
            out.sort_by(|&h1, &h2| {
                let a1 = (verts[head(h1 as usize) as usize] - vp).angle();
                let a2 = (verts[head(h2 as usize) as usize] - vp).angle();
                a1.total_cmp(&a2)
            });
        }
        // Position of each half-edge in its origin's rotation.
        let mut pos: Vec<u32> = vec![0; 2 * ne];
        for out in &outgoing {
            for (i, &h) in out.iter().enumerate() {
                pos[h as usize] = i as u32;
            }
        }

        // next(h) = CCW-predecessor of twin(h) around head(h).
        let next = |h: usize| -> usize {
            let t = h ^ 1;
            let v = origin(t) as usize;
            let out = &outgoing[v];
            let p = pos[t] as usize;
            let prev = if p == 0 { out.len() - 1 } else { p - 1 };
            out[prev] as usize
        };

        let mut faces: Vec<Face> = Vec::new();
        let mut negative_cycles = 0usize;
        let mut visited = vec![false; 2 * ne];
        for h0 in 0..2 * ne {
            if visited[h0] {
                continue;
            }
            let mut cycle: Vec<u32> = Vec::new();
            let mut h = h0;
            loop {
                visited[h] = true;
                cycle.push(origin(h));
                h = next(h);
                if h == h0 {
                    break;
                }
            }
            // Signed area of the cycle, with a running error bound: a walk
            // around a tree component traverses every edge both ways, so its
            // true area is exactly zero, but naive summation can leave a
            // tiny positive residue — which must not become a bogus face.
            let mut area = 0.0;
            let mut sum_abs = 0.0;
            let mut bbox = Aabb::EMPTY;
            for i in 0..cycle.len() {
                let a = verts[cycle[i] as usize];
                let b = verts[cycle[(i + 1) % cycle.len()] as usize];
                let term = a.x * b.y - b.x * a.y;
                area += term;
                sum_abs += term.abs();
                bbox.insert(a);
            }
            area *= 0.5;
            let err_bound = sum_abs * f64::EPSILON * (cycle.len() as f64 + 4.0);
            if area > err_bound {
                faces.push(Face {
                    boundary: cycle,
                    area,
                    bbox,
                });
            } else {
                negative_cycles += 1;
            }
        }
        // Sort faces by area ascending so point location can return the first
        // (innermost) containing face.
        faces.sort_by(|f1, f2| f1.area.total_cmp(&f2.area));
        self.faces = faces;
        self.negative_cycles = negative_cycles;
    }

    /// Vertices of the subdivision.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.verts
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of bounded faces.
    #[inline]
    pub fn num_faces(&self) -> usize {
        self.faces.len()
    }

    /// Number of non-positive-area cycles (hole boundaries and outer walks);
    /// equals the number of connected components of the edge graph.
    #[inline]
    pub fn num_negative_cycles(&self) -> usize {
        self.negative_cycles
    }

    /// Total combinatorial complexity: vertices + edges + faces (including
    /// the unbounded face), the measure used by the paper.
    #[inline]
    pub fn complexity(&self) -> usize {
        self.num_vertices() + self.num_edges() + self.num_faces() + 1
    }

    /// Undirected edges as vertex-index pairs.
    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Bounded faces, sorted by area ascending.
    #[inline]
    pub fn faces(&self) -> &[Face] {
        &self.faces
    }

    /// Index of the innermost bounded face containing `p`, or `None` if `p`
    /// lies in the unbounded face.
    ///
    /// Points exactly on edges may be assigned to either incident face.
    pub fn locate(&self, p: Point) -> Option<usize> {
        self.faces
            .iter()
            .position(|f| f.bbox.contains(p) && self.cycle_contains(&f.boundary, p))
    }

    /// A representative interior point of face `fi` — guaranteed to locate
    /// back to `fi` (computed by shrinking towards a boundary edge midpoint).
    pub fn face_interior_point(&self, fi: usize) -> Option<Point> {
        let f = &self.faces[fi];
        let n = f.boundary.len();
        // Try offsetting inwards from each boundary edge midpoint by a
        // decreasing step until the sample locates inside this face.
        for i in 0..n {
            let a = self.verts[f.boundary[i] as usize];
            let b = self.verts[f.boundary[(i + 1) % n] as usize];
            let mid = a.midpoint(b);
            let left: Vector = (b - a).perp();
            let len = left.norm();
            if len == 0.0 {
                continue;
            }
            let left = left / len;
            let mut step = a.dist(b) * 0.25;
            for _ in 0..40 {
                let cand = mid + left * step;
                if self.locate(cand) == Some(fi) {
                    return Some(cand);
                }
                step *= 0.5;
            }
        }
        None
    }

    fn cycle_contains(&self, cycle: &[u32], p: Point) -> bool {
        // Ray casting to +x.
        let mut inside = false;
        let n = cycle.len();
        for i in 0..n {
            let a = self.verts[cycle[i] as usize];
            let b = self.verts[cycle[(i + 1) % n] as usize];
            if (a.y > p.y) != (b.y > p.y) {
                let t = (p.y - a.y) / (b.y - a.y);
                let x = a.x + t * (b.x - a.x);
                if x > p.x {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Sanity check of Euler's formula `V - E + F = 1 + C` for planar
    /// graphs (`F` counting only bounded faces), where `C` is the number of
    /// connected components. Returns `(V, E, F, C)` and whether it holds.
    pub fn euler_check(&self) -> (usize, usize, usize, usize, bool) {
        let v = self.num_vertices();
        let e = self.num_edges();
        let f = self.num_faces();
        // Union–find for components.
        let mut parent: Vec<u32> = (0..v as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut r = x;
            while parent[r as usize] != r {
                r = parent[r as usize];
            }
            let mut c = x;
            while parent[c as usize] != r {
                let nxt = parent[c as usize];
                parent[c as usize] = r;
                c = nxt;
            }
            r
        }
        for &(a, b) in &self.edges {
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra != rb {
                parent[ra as usize] = rb;
            }
        }
        let mut roots: std::collections::HashSet<u32> = Default::default();
        for i in 0..v as u32 {
            roots.insert(find(&mut parent, i));
        }
        let c = roots.len();
        (v, e, f, c, v + f == e + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn single_square() {
        let segs = vec![
            seg(0.0, 0.0, 1.0, 0.0),
            seg(1.0, 0.0, 1.0, 1.0),
            seg(1.0, 1.0, 0.0, 1.0),
            seg(0.0, 1.0, 0.0, 0.0),
        ];
        let arr = Arrangement::build(&segs, 1e-9);
        assert_eq!(arr.num_vertices(), 4);
        assert_eq!(arr.num_edges(), 4);
        assert_eq!(arr.num_faces(), 1);
        assert!((arr.faces()[0].area - 1.0).abs() < 1e-12);
        assert_eq!(arr.locate(Point::new(0.5, 0.5)), Some(0));
        assert_eq!(arr.locate(Point::new(2.0, 0.5)), None);
        let (_, _, _, _, euler) = arr.euler_check();
        assert!(euler);
    }

    #[test]
    fn crossing_cross() {
        // A plus sign: two crossing segments create 1 new vertex, 4 edges,
        // no bounded faces.
        let segs = vec![seg(-1.0, 0.0, 1.0, 0.0), seg(0.0, -1.0, 0.0, 1.0)];
        let arr = Arrangement::build(&segs, 1e-9);
        assert_eq!(arr.num_vertices(), 5);
        assert_eq!(arr.num_edges(), 4);
        assert_eq!(arr.num_faces(), 0);
    }

    #[test]
    fn two_crossing_squares() {
        // Unit square and a square shifted by (0.5, 0.5): 8 crossings...
        // actually 2 boundary crossings, 3 bounded faces.
        let sq = |ox: f64, oy: f64| {
            vec![
                seg(ox, oy, ox + 1.0, oy),
                seg(ox + 1.0, oy, ox + 1.0, oy + 1.0),
                seg(ox + 1.0, oy + 1.0, ox, oy + 1.0),
                seg(ox, oy + 1.0, ox, oy),
            ]
        };
        let mut segs = sq(0.0, 0.0);
        segs.extend(sq(0.5, 0.5));
        let arr = Arrangement::build(&segs, 1e-9);
        assert_eq!(arr.num_faces(), 3);
        // The overlap face is the innermost at (0.75, 0.75).
        let fi = arr.locate(Point::new(0.75, 0.75)).unwrap();
        assert!((arr.faces()[fi].area - 0.25).abs() < 1e-12);
        let (_, _, _, _, euler) = arr.euler_check();
        assert!(euler);
    }

    #[test]
    fn nested_squares_hole_face() {
        // A big square containing a small square: the annular face between
        // them plus the inner square face.
        let mut segs = vec![
            seg(0.0, 0.0, 4.0, 0.0),
            seg(4.0, 0.0, 4.0, 4.0),
            seg(4.0, 4.0, 0.0, 4.0),
            seg(0.0, 4.0, 0.0, 0.0),
        ];
        segs.extend(vec![
            seg(1.0, 1.0, 2.0, 1.0),
            seg(2.0, 1.0, 2.0, 2.0),
            seg(2.0, 2.0, 1.0, 2.0),
            seg(1.0, 2.0, 1.0, 1.0),
        ]);
        let arr = Arrangement::build(&segs, 1e-9);
        assert_eq!(arr.num_faces(), 2);
        // Inner point locates to the small face (innermost).
        let fi = arr.locate(Point::new(1.5, 1.5)).unwrap();
        assert!((arr.faces()[fi].area - 1.0).abs() < 1e-12);
        // Annulus point locates to the big cycle.
        let fo = arr.locate(Point::new(3.0, 3.0)).unwrap();
        assert!((arr.faces()[fo].area - 16.0).abs() < 1e-12);
        assert_ne!(fi, fo);
    }

    #[test]
    fn grid_arrangement_counts() {
        // m horizontal and m vertical lines: (m*m) crossings,
        // (m-1)^2 bounded faces.
        let m = 5;
        let mut segs = Vec::new();
        for i in 0..m {
            let c = i as f64;
            segs.push(seg(-1.0, c, m as f64, c));
            segs.push(seg(c, -1.0, c, m as f64));
        }
        let arr = Arrangement::build(&segs, 1e-9);
        assert_eq!(arr.num_faces(), (m - 1) * (m - 1));
        // Vertices: m*m crossings + 4m endpoints.
        assert_eq!(arr.num_vertices(), m * m + 4 * m);
        let (_, _, _, _, euler) = arr.euler_check();
        assert!(euler);
    }

    #[test]
    fn face_interior_points_locate_back() {
        let mut segs = vec![
            seg(0.0, 0.0, 2.0, 0.0),
            seg(2.0, 0.0, 2.0, 2.0),
            seg(2.0, 2.0, 0.0, 2.0),
            seg(0.0, 2.0, 0.0, 0.0),
            seg(0.0, 1.0, 2.0, 1.0), // split horizontally
        ];
        segs.push(seg(1.0, 0.0, 1.0, 2.0)); // and vertically
        let arr = Arrangement::build(&segs, 1e-9);
        assert_eq!(arr.num_faces(), 4);
        for fi in 0..arr.num_faces() {
            let p = arr.face_interior_point(fi).expect("interior point");
            assert_eq!(arr.locate(p), Some(fi));
        }
    }

    #[test]
    fn t_junction_splits() {
        // A T junction: vertical segment ends exactly on a horizontal one.
        let segs = vec![seg(-1.0, 0.0, 1.0, 0.0), seg(0.0, 0.0, 0.0, 1.0)];
        let arr = Arrangement::build(&segs, 1e-9);
        assert_eq!(arr.num_vertices(), 4);
        assert_eq!(arr.num_edges(), 3);
    }
}

/// Grid-accelerated point location over an [`Arrangement`].
///
/// The base [`Arrangement::locate`] scans faces by ascending area; this
/// locator buckets face bounding boxes into a uniform grid so a query only
/// tests the faces overlapping its cell — O(1 + candidates) per query in
/// practice, the practical stand-in for the `O(log μ)` structures of
/// `[dBCKO08]` that Theorem 2.11 cites.
#[derive(Clone, Debug)]
pub struct FaceLocator {
    origin: Point,
    cell: f64,
    nx: i64,
    ny: i64,
    /// Faces overlapping each grid cell, in ascending-area (= face index)
    /// order so the first hit is the innermost containing face.
    cells: Vec<Vec<u32>>,
}

impl FaceLocator {
    /// Builds a locator; `resolution` is the grid dimension along the longer
    /// side (64–256 is a good range).
    pub fn build(arr: &Arrangement, resolution: usize) -> Self {
        assert!(resolution >= 1);
        let mut bb = Aabb::EMPTY;
        for f in arr.faces() {
            bb = bb.union(&f.bbox);
        }
        if bb.is_empty() {
            return FaceLocator {
                origin: Point::ORIGIN,
                cell: 1.0,
                nx: 1,
                ny: 1,
                cells: vec![Vec::new()],
            };
        }
        let cell = (bb.width().max(bb.height()) / resolution as f64).max(1e-12);
        let nx = ((bb.width() / cell).floor() as i64 + 1).max(1);
        let ny = ((bb.height() / cell).floor() as i64 + 1).max(1);
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); (nx * ny) as usize];
        for (fi, f) in arr.faces().iter().enumerate() {
            let x0 = (((f.bbox.min.x - bb.min.x) / cell).floor() as i64).clamp(0, nx - 1);
            let x1 = (((f.bbox.max.x - bb.min.x) / cell).floor() as i64).clamp(0, nx - 1);
            let y0 = (((f.bbox.min.y - bb.min.y) / cell).floor() as i64).clamp(0, ny - 1);
            let y1 = (((f.bbox.max.y - bb.min.y) / cell).floor() as i64).clamp(0, ny - 1);
            for cy in y0..=y1 {
                for cx in x0..=x1 {
                    cells[(cy * nx + cx) as usize].push(fi as u32);
                }
            }
        }
        FaceLocator {
            origin: bb.min,
            cell,
            nx,
            ny,
            cells,
        }
    }

    /// Index of the innermost face of `arr` containing `p`, or `None` for
    /// the unbounded face. `arr` must be the arrangement the locator was
    /// built from.
    pub fn locate(&self, arr: &Arrangement, p: Point) -> Option<usize> {
        let cx = ((p.x - self.origin.x) / self.cell).floor() as i64;
        let cy = ((p.y - self.origin.y) / self.cell).floor() as i64;
        if cx < 0 || cy < 0 || cx >= self.nx || cy >= self.ny {
            return None;
        }
        let faces = arr.faces();
        self.cells[(cy * self.nx + cx) as usize]
            .iter()
            .map(|&fi| fi as usize)
            .find(|&fi| {
                let f = &faces[fi];
                f.bbox.contains(p) && arr.face_contains(fi, p)
            })
    }
}

impl Arrangement {
    /// Membership of `p` in face `fi`'s outer cycle (used by [`FaceLocator`]).
    pub(crate) fn face_contains(&self, fi: usize, p: Point) -> bool {
        self.cycle_contains(&self.faces[fi].boundary, p)
    }
}

#[cfg(test)]
mod locator_tests {
    use super::*;

    #[test]
    fn locator_agrees_with_linear_scan() {
        // A grid of squares: every cell located identically by both paths.
        let m = 6;
        let mut segs = Vec::new();
        for i in 0..=m {
            let c = i as f64;
            segs.push(Segment::new(Point::new(0.0, c), Point::new(m as f64, c)));
            segs.push(Segment::new(Point::new(c, 0.0), Point::new(c, m as f64)));
        }
        let arr = Arrangement::build(&segs, 1e-9);
        let loc = FaceLocator::build(&arr, 32);
        for i in 0..3 * m {
            for j in 0..3 * m {
                let p = Point::new(i as f64 / 3.0 + 0.17, j as f64 / 3.0 + 0.29);
                assert_eq!(loc.locate(&arr, p), arr.locate(p), "p = {p:?}");
            }
        }
        // Outside.
        assert_eq!(loc.locate(&arr, Point::new(100.0, 100.0)), None);
    }

    #[test]
    fn empty_arrangement_locator() {
        let arr = Arrangement::build(&[], 1e-9);
        let loc = FaceLocator::build(&arr, 16);
        assert_eq!(loc.locate(&arr, Point::ORIGIN), None);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_euler_formula_on_random_soups(
            segs in proptest::collection::vec(
                (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0),
                1..24,
            )
        ) {
            let segments: Vec<Segment> = segs
                .into_iter()
                .map(|(ax, ay, bx, by)| {
                    Segment::new(Point::new(ax, ay), Point::new(bx, by))
                })
                .filter(|s| s.length() > 1e-9)
                .collect();
            prop_assume!(!segments.is_empty());
            let arr = Arrangement::build(&segments, 1e-9);
            let (v, e, f, c, ok) = arr.euler_check();
            prop_assert!(ok, "Euler violated: V={v} E={e} F={f} C={c}");
        }

        #[test]
        fn prop_locator_matches_linear_scan(
            segs in proptest::collection::vec(
                (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0),
                4..20,
            ),
            qx in -12.0f64..12.0, qy in -12.0f64..12.0,
        ) {
            let segments: Vec<Segment> = segs
                .into_iter()
                .map(|(ax, ay, bx, by)| {
                    Segment::new(Point::new(ax, ay), Point::new(bx, by))
                })
                .filter(|s| s.length() > 1e-9)
                .collect();
            prop_assume!(!segments.is_empty());
            let arr = Arrangement::build(&segments, 1e-9);
            let loc = FaceLocator::build(&arr, 32);
            let q = Point::new(qx, qy);
            prop_assert_eq!(loc.locate(&arr, q), arr.locate(q));
        }
    }
}
