//! Axis-aligned bounding boxes.

use crate::point::Point;

/// A closed axis-aligned rectangle `[min.x, max.x] x [min.y, max.y]`.
///
/// An *empty* box has `min > max` componentwise; [`Aabb::EMPTY`] is the
/// identity for [`Aabb::union`].
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Aabb {
    /// The empty box (identity for union).
    pub const EMPTY: Aabb = Aabb {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Box from explicit corners; `min` must be componentwise `<= max` for a
    /// non-empty box.
    #[inline]
    pub const fn new(min: Point, max: Point) -> Self {
        Aabb { min, max }
    }

    /// The tight box around a point set; [`Aabb::EMPTY`] for an empty slice.
    pub fn of_points(pts: &[Point]) -> Self {
        let mut b = Aabb::EMPTY;
        for &p in pts {
            b.insert(p);
        }
        b
    }

    /// `true` if this box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Expands the box to contain `p`.
    #[inline]
    pub fn insert(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Smallest box containing both operands.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// `true` if `p` lies in the closed box.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` if the closed boxes intersect.
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Width (x-extent); negative for empty boxes.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y-extent); negative for empty boxes.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point (meaningless for empty boxes).
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Box grown by `margin` on every side.
    #[inline]
    pub fn inflate(&self, margin: f64) -> Aabb {
        Aabb {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Minimum distance from `q` to any point of the box (0 inside).
    #[inline]
    pub fn min_dist(&self, q: Point) -> f64 {
        let dx = (self.min.x - q.x).max(0.0).max(q.x - self.max.x);
        let dy = (self.min.y - q.y).max(0.0).max(q.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum distance from `q` to any point of the box.
    #[inline]
    pub fn max_dist(&self, q: Point) -> f64 {
        let dx = (q.x - self.min.x).abs().max((q.x - self.max.x).abs());
        let dy = (q.y - self.min.y).abs().max((q.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared minimum distance (avoids a square root in pruning loops).
    #[inline]
    pub fn min_dist2(&self, q: Point) -> f64 {
        let dx = (self.min.x - q.x).max(0.0).max(q.x - self.max.x);
        let dy = (self.min.y - q.y).max(0.0).max(q.y - self.max.y);
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_union_identity() {
        let b = Aabb::of_points(&[Point::new(1.0, 2.0), Point::new(-1.0, 5.0)]);
        assert_eq!(Aabb::EMPTY.union(&b), b);
        assert!(Aabb::EMPTY.is_empty());
        assert!(!b.is_empty());
    }

    #[test]
    fn contains_and_intersects() {
        let b = Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(b.contains(Point::new(0.0, 2.0))); // boundary
        assert!(!b.contains(Point::new(2.1, 1.0)));
        let c = Aabb::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(b.intersects(&c)); // corner touch counts
        let d = Aabb::new(Point::new(2.5, 2.5), Point::new(3.0, 3.0));
        assert!(!b.intersects(&d));
    }

    #[test]
    fn distances() {
        let b = Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert_eq!(b.min_dist(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(b.min_dist(Point::new(5.0, 1.0)), 3.0);
        assert_eq!(b.min_dist(Point::new(5.0, 6.0)), 5.0);
        assert_eq!(b.max_dist(Point::new(0.0, 0.0)), (8.0f64).sqrt());
        assert_eq!(b.min_dist2(Point::new(5.0, 6.0)), 25.0);
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let b = Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).inflate(0.5);
        assert_eq!(b.min, Point::new(-0.5, -0.5));
        assert_eq!(b.max, Point::new(1.5, 1.5));
        assert_eq!(b.center(), Point::new(0.5, 0.5));
        assert_eq!(b.width(), 2.0);
    }
}
