//! Incremental Delaunay triangulation (Bowyer–Watson with ghost triangles).
//!
//! Implements the classic structure the paper's Monte-Carlo algorithm (§4.2)
//! builds per instantiation: "we construct the Voronoi diagram Vor(R_j) …
//! and preprocess it for point-location queries". Nearest-site queries are
//! answered by locating the triangle containing the query and then walking
//! greedily to the nearest vertex — greedy routing provably succeeds on
//! Delaunay triangulations (Bose–Morin).
//!
//! Robustness: all orientation and in-circle decisions use the exact adaptive
//! predicates of `unn-geom`. The convex-hull boundary is handled with *ghost
//! triangles* (one per hull edge, sharing a symbolic vertex at infinity), so
//! no fragile "huge super-triangle" coordinates enter the predicates.
//! Duplicate input points are mapped to a canonical representative.

use unn_geom::predicates::{incircle, orient2d};
use unn_geom::Point;

/// Symbolic vertex at infinity.
const GHOST: u32 = u32::MAX;
/// Sentinel for "no neighbor" (only during construction).
const NONE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Tri {
    /// Vertex ids (CCW); one may be [`GHOST`].
    v: [u32; 3],
    /// `n[i]` is the triangle across the edge opposite `v[i]`.
    n: [u32; 3],
    alive: bool,
}

/// A Delaunay triangulation of a planar point set.
///
/// Falls back to brute-force nearest-neighbor scans when the input is
/// degenerate (fewer than 3 distinct points, or all points collinear).
///
/// ```
/// use unn_geom::Point;
/// use unn_voronoi::Delaunay;
///
/// let sites = vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(2.0, 3.0),
///     Point::new(2.0, -3.0),
/// ];
/// let dt = Delaunay::new(&sites);
/// let (nn, dist) = dt.nearest(Point::new(1.9, 2.0)).unwrap();
/// assert_eq!(nn, 2);
/// assert!(dist < 1.1);
/// ```
#[derive(Clone, Debug)]
pub struct Delaunay {
    pts: Vec<Point>,
    tris: Vec<Tri>,
    /// For each vertex, some alive triangle containing it (post-build).
    vert_tri: Vec<u32>,
    /// Canonical representative for duplicate points.
    dup_of: Vec<u32>,
    /// `true` when the point set was degenerate and `tris` is unusable.
    degenerate: bool,
    /// Walk start hint.
    last: u32,
}

impl Delaunay {
    /// Fallible [`Delaunay::new`]: rejects non-finite sites with a typed
    /// error. Duplicates and collinear sets remain *valid* inputs (they
    /// trigger the brute-force fallback, not an error).
    pub fn try_new(points: &[Point]) -> Result<Self, crate::error::VoronoiError> {
        if let Some((index, &point)) = points.iter().enumerate().find(|(_, p)| !p.is_finite()) {
            return Err(crate::error::VoronoiError::NonFiniteSite { index, point });
        }
        Ok(Self::new(points))
    }

    /// Builds the triangulation. Accepts any input, including duplicates and
    /// collinear sets (which trigger the brute-force fallback).
    pub fn new(points: &[Point]) -> Self {
        let n = points.len();
        let mut d = Delaunay {
            pts: points.to_vec(),
            tris: Vec::with_capacity(2 * n + 16),
            vert_tri: vec![NONE; n],
            dup_of: (0..n as u32).collect(),
            degenerate: false,
            last: 0,
        };
        // Find three non-collinear points to seed the triangulation.
        let mut seed: Option<(usize, usize, usize)> = None;
        'outer: for i in 0..n {
            for j in (i + 1)..n {
                if points[i] == points[j] {
                    continue;
                }
                for (k, pk) in points.iter().enumerate().skip(j + 1) {
                    if orient2d(points[i], points[j], *pk) != 0.0 {
                        seed = Some((i, j, k));
                        break 'outer;
                    }
                }
                break; // distinct pair found, but no third non-collinear yet
            }
        }
        let Some((i, j, k)) = seed else {
            d.degenerate = true;
            return d;
        };
        d.init_seed(i as u32, j as u32, k as u32);
        for v in 0..n as u32 {
            if v == i as u32 || v == j as u32 || v == k as u32 {
                continue;
            }
            d.insert(v);
        }
        d.finish();
        d
    }

    fn init_seed(&mut self, i: u32, j: u32, k: u32) {
        let (a, b, c) = if orient2d(
            self.pts[i as usize],
            self.pts[j as usize],
            self.pts[k as usize],
        ) > 0.0
        {
            (i, j, k)
        } else {
            (i, k, j)
        };
        // Real triangle 0, ghosts 1..=3 across each edge.
        // Edge opposite a = (b, c): ghost (c, b, GHOST), etc.
        self.tris.push(Tri {
            v: [a, b, c],
            n: [1, 2, 3],
            alive: true,
        });
        let ghosts = [[c, b], [a, c], [b, a]];
        for (gi, e) in ghosts.iter().enumerate() {
            self.tris.push(Tri {
                v: [e[0], e[1], GHOST],
                n: [NONE, NONE, 0],
                alive: true,
            });
            let _ = gi;
        }
        // Ghost-ghost adjacency: ghost (u, v, G) has edge (v, G) opposite u
        // and (G, u) opposite v. Neighbor across (v, G) is the ghost whose
        // real edge starts at v.
        // ghost1 = (c, b, G), ghost2 = (a, c, G), ghost3 = (b, a, G).
        // Across (b, G) from ghost1 (opposite c=v[0]): ghost starting at b =
        // ghost3. Across (G, c) from ghost1 (opposite b=v[1]): ghost ending
        // at c = ghost2.
        self.tris[1].n = [3, 2, 0];
        self.tris[2].n = [1, 3, 0];
        self.tris[3].n = [2, 1, 0];
    }

    #[inline]
    fn ghost_idx(t: &Tri) -> Option<usize> {
        t.v.iter().position(|&v| v == GHOST)
    }

    /// Does `p` lie inside the (possibly degenerate) circumcircle of `t`?
    fn in_circumcircle(&self, t: &Tri, p: Point) -> bool {
        match Self::ghost_idx(t) {
            None => {
                let (a, b, c) = (
                    self.pts[t.v[0] as usize],
                    self.pts[t.v[1] as usize],
                    self.pts[t.v[2] as usize],
                );
                incircle(a, b, c, p) > 0.0
            }
            Some(g) => {
                let u = self.pts[t.v[(g + 1) % 3] as usize];
                let v = self.pts[t.v[(g + 2) % 3] as usize];
                let o = orient2d(u, v, p);
                if o > 0.0 {
                    return true;
                }
                if o < 0.0 {
                    return false;
                }
                // Collinear with the hull edge: inside iff within the closed
                // edge segment (handles points inserted exactly on the hull).
                let lo_x = u.x.min(v.x);
                let hi_x = u.x.max(v.x);
                let lo_y = u.y.min(v.y);
                let hi_y = u.y.max(v.y);
                p.x >= lo_x && p.x <= hi_x && p.y >= lo_y && p.y <= hi_y
            }
        }
    }

    /// Walks from `start` to a triangle whose closure (or outer wedge, for
    /// ghosts) contains `p`.
    fn locate(&self, mut cur: u32, p: Point) -> u32 {
        let mut steps = 0usize;
        let max_steps = 4 * self.tris.len() + 64;
        loop {
            steps += 1;
            if steps > max_steps {
                // Degenerate walk (should not happen): linear fallback.
                return self.locate_linear(p);
            }
            let t = &self.tris[cur as usize];
            match Self::ghost_idx(t) {
                None => {
                    let mut moved = false;
                    for i in 0..3 {
                        let a = self.pts[t.v[(i + 1) % 3] as usize];
                        let b = self.pts[t.v[(i + 2) % 3] as usize];
                        if orient2d(a, b, p) < 0.0 {
                            cur = t.n[i];
                            moved = true;
                            break;
                        }
                    }
                    if !moved {
                        return cur;
                    }
                }
                Some(g) => {
                    let iu = (g + 1) % 3;
                    let iv = (g + 2) % 3;
                    let u = self.pts[t.v[iu] as usize];
                    let v = self.pts[t.v[iv] as usize];
                    let o = orient2d(u, v, p);
                    if o > 0.0 {
                        return cur;
                    }
                    if o < 0.0 {
                        // p is on the hull side: go back inside.
                        cur = t.n[g];
                        continue;
                    }
                    // Collinear: within segment -> this ghost; else slide
                    // along the hull towards p.
                    if p.x >= u.x.min(v.x)
                        && p.x <= u.x.max(v.x)
                        && p.y >= u.y.min(v.y)
                        && p.y <= u.y.max(v.y)
                    {
                        return cur;
                    }
                    // Move towards the endpoint nearer p.
                    cur = if p.dist2(v) < p.dist2(u) {
                        t.n[iu] // across edge (v, GHOST)
                    } else {
                        t.n[iv] // across edge (GHOST, u)
                    };
                }
            }
        }
    }

    fn locate_linear(&self, p: Point) -> u32 {
        for (i, t) in self.tris.iter().enumerate() {
            if !t.alive {
                continue;
            }
            match Self::ghost_idx(t) {
                None => {
                    let a = self.pts[t.v[0] as usize];
                    let b = self.pts[t.v[1] as usize];
                    let c = self.pts[t.v[2] as usize];
                    if orient2d(a, b, p) >= 0.0
                        && orient2d(b, c, p) >= 0.0
                        && orient2d(c, a, p) >= 0.0
                    {
                        return i as u32;
                    }
                }
                Some(g) => {
                    let u = self.pts[t.v[(g + 1) % 3] as usize];
                    let v = self.pts[t.v[(g + 2) % 3] as usize];
                    if orient2d(u, v, p) >= 0.0 {
                        return i as u32;
                    }
                }
            }
        }
        0
    }

    fn insert(&mut self, vid: u32) {
        let p = self.pts[vid as usize];
        let seed = self.locate(self.last, p);
        // Duplicate detection: coincides with a vertex of the seed triangle.
        for &v in &self.tris[seed as usize].v {
            if v != GHOST && self.pts[v as usize] == p {
                self.dup_of[vid as usize] = self.dup_of[v as usize];
                return;
            }
        }
        // Cavity BFS over circumcircle-violating triangles.
        let mut cavity: Vec<u32> = vec![seed];
        let mut in_cavity = std::collections::HashSet::new();
        in_cavity.insert(seed);
        let mut queue = vec![seed];
        while let Some(ti) = queue.pop() {
            let neighbors = self.tris[ti as usize].n;
            for nb in neighbors {
                if nb == NONE || in_cavity.contains(&nb) {
                    continue;
                }
                if self.in_circumcircle(&self.tris[nb as usize], p) {
                    in_cavity.insert(nb);
                    cavity.push(nb);
                    queue.push(nb);
                }
            }
        }
        // Collect boundary edges: (u, v, outside_tri, outside_local_idx).
        let mut boundary: Vec<(u32, u32, u32, usize)> = Vec::new();
        for &ti in &cavity {
            let t = self.tris[ti as usize].clone();
            for i in 0..3 {
                let nb = t.n[i];
                if nb != NONE && in_cavity.contains(&nb) {
                    continue;
                }
                let u = t.v[(i + 1) % 3];
                let v = t.v[(i + 2) % 3];
                // Local index of this edge in the outside triangle.
                let oi = if nb == NONE {
                    usize::MAX
                } else {
                    let o = &self.tris[nb as usize];
                    match (0..3).find(|&j| o.v[(j + 1) % 3] == v && o.v[(j + 2) % 3] == u) {
                        Some(j) => j,
                        // Adjacency is mutual by construction; a miss here
                        // means a corrupted triangulation. Treat the edge as
                        // hull boundary in release rather than panic.
                        None => {
                            debug_assert!(false, "adjacency of {nb} and {ti} not mutual");
                            usize::MAX
                        }
                    }
                };
                boundary.push((u, v, nb, oi));
            }
        }
        // Kill cavity triangles.
        for &ti in &cavity {
            self.tris[ti as usize].alive = false;
        }
        // Create new triangles (vid, u, v), one per boundary edge.
        let base = self.tris.len() as u32;
        let mut around: std::collections::HashMap<u32, Vec<(u32, usize)>> =
            std::collections::HashMap::new();
        for (off, &(u, v, nb, oi)) in boundary.iter().enumerate() {
            let ti = base + off as u32;
            self.tris.push(Tri {
                v: [vid, u, v],
                n: [nb, NONE, NONE], // n[0] opposite vid = edge (u, v)
                alive: true,
            });
            if nb != NONE && oi != usize::MAX {
                self.tris[nb as usize].n[oi] = ti;
            }
            // Edges (vid, u) [opposite v, local 2] and (v, vid) [opposite u,
            // local 1] pair up with sibling new triangles sharing u / v.
            around.entry(u).or_default().push((ti, 2));
            around.entry(v).or_default().push((ti, 1));
        }
        for (_, entries) in around {
            debug_assert_eq!(entries.len(), 2, "cavity boundary not a cycle");
            if entries.len() == 2 {
                let (t1, i1) = entries[0];
                let (t2, i2) = entries[1];
                self.tris[t1 as usize].n[i1] = t2;
                self.tris[t2 as usize].n[i2] = t1;
            }
        }
        self.last = base;
    }

    fn finish(&mut self) {
        // Compact: drop dead triangles, remap neighbor ids.
        let mut remap: Vec<u32> = vec![NONE; self.tris.len()];
        let mut out: Vec<Tri> = Vec::with_capacity(self.tris.len());
        for (i, t) in self.tris.iter().enumerate() {
            if t.alive {
                remap[i] = out.len() as u32;
                out.push(t.clone());
            }
        }
        for t in &mut out {
            for n in &mut t.n {
                *n = remap[*n as usize];
            }
        }
        self.tris = out;
        self.last = 0;
        // Vertex -> incident triangle.
        for (i, t) in self.tris.iter().enumerate() {
            for &v in &t.v {
                if v != GHOST {
                    self.vert_tri[v as usize] = i as u32;
                }
            }
        }
    }

    /// Number of input points (including duplicates).
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` for an empty input.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// `true` when the input was degenerate (collinear / too small) and
    /// queries fall back to linear scans.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// Real (non-ghost) triangles as vertex-index triples (CCW).
    pub fn triangles(&self) -> Vec<[usize; 3]> {
        self.tris
            .iter()
            .filter(|t| t.alive && Self::ghost_idx(t).is_none())
            .map(|t| [t.v[0] as usize, t.v[1] as usize, t.v[2] as usize])
            .collect()
    }

    /// Delaunay neighbors of vertex `v` (its Voronoi cell's adjacent sites).
    pub fn vertex_neighbors(&self, v: usize) -> Vec<usize> {
        let mut out = Vec::new();
        if self.degenerate || self.vert_tri[v] == NONE {
            return out;
        }
        let start = self.vert_tri[v];
        let mut cur = start;
        loop {
            let t = &self.tris[cur as usize];
            // `vert_tri`/rotation only ever visit triangles incident to `v`;
            // a miss means corrupted adjacency. Return the partial ring in
            // release rather than panic.
            let Some(i) = t.v.iter().position(|&x| x == v as u32) else {
                debug_assert!(false, "triangle {cur} not incident to vertex {v}");
                break;
            };
            let next_v = t.v[(i + 1) % 3];
            if next_v != GHOST {
                out.push(next_v as usize);
            }
            // Rotate CCW around v: cross the edge (v, v[(i+2)%3])... i.e.
            // neighbor opposite v[(i+1)%3].
            cur = t.n[(i + 1) % 3];
            if cur == start {
                break;
            }
        }
        out
    }

    /// Nearest input point to `q` as `(index, distance)`; ties broken
    /// arbitrarily among coincident duplicates (canonical representative).
    pub fn nearest(&self, q: Point) -> Option<(usize, f64)> {
        if self.pts.is_empty() {
            return None;
        }
        if self.degenerate {
            let mut best = (0usize, f64::INFINITY);
            for (i, p) in self.pts.iter().enumerate() {
                let d = p.dist(q);
                if d < best.1 {
                    best = (i, d);
                }
            }
            return Some((self.dup_of[best.0] as usize, best.1));
        }
        let t = self.locate(self.last, q);
        let tri = &self.tris[t as usize];
        // Every triangle (ghost included) has >= 1 real vertex. Starting the
        // descent at vertex 0 is still correct if that invariant ever broke:
        // greedy routing on the Delaunay graph converges to the nearest site
        // from any start, just in more hops.
        let mut cur: u32 = tri
            .v
            .iter()
            .filter(|&&v| v != GHOST)
            .min_by(|&&a, &&b| {
                self.pts[a as usize]
                    .dist2(q)
                    .total_cmp(&self.pts[b as usize].dist2(q))
            })
            .copied()
            .unwrap_or_else(|| {
                debug_assert!(false, "triangle {t} has no real vertex");
                0
            });
        // Greedy descent over Delaunay neighbors (Bose–Morin guarantees
        // convergence to the true nearest site).
        loop {
            let dc = self.pts[cur as usize].dist2(q);
            let mut improved = false;
            for w in self.vertex_neighbors(cur as usize) {
                if self.pts[w].dist2(q) < dc {
                    cur = w as u32;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        Some((
            self.dup_of[cur as usize] as usize,
            self.pts[cur as usize].dist(q),
        ))
    }

    /// The `m` nearest input points to `q`, sorted by distance.
    ///
    /// Bounded BFS over the Delaunay graph starting at the nearest vertex:
    /// the set of sites within any distance `R` of `q` is connected through
    /// sites at distance `≤ R` (greedy paths towards `NN(q)` have
    /// non-increasing distance), so expanding only vertices within the
    /// current `m`-th-best bound is exact.
    pub fn m_nearest(&self, q: Point, m: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.m_nearest_into(q, m, &mut out);
        out
    }

    /// [`Delaunay::m_nearest`] into a caller-provided buffer (cleared
    /// first), so per-round loops reuse one allocation.
    pub fn m_nearest_into(&self, q: Point, m: usize, out: &mut Vec<(usize, f64)>) {
        out.clear();
        if self.pts.is_empty() || m == 0 {
            return;
        }
        if self.degenerate {
            out.extend(self.pts.iter().enumerate().map(|(i, p)| (i, p.dist(q))));
            out.sort_by(|a, b| a.1.total_cmp(&b.1));
            out.truncate(m);
            return;
        }
        // `nearest` returns Some whenever `pts` is nonempty (checked above).
        let Some((start, _)) = self.nearest(q) else {
            debug_assert!(false, "nearest returned None on nonempty point set");
            return;
        };
        let mut visited = vec![false; self.pts.len()];
        let found = out;
        let mut queue = std::collections::VecDeque::from([start]);
        visited[start] = true;
        let bound = |found: &Vec<(usize, f64)>| -> f64 {
            if found.len() < m {
                f64::INFINITY
            } else {
                // m-th smallest distance among found (found is unsorted;
                // compute lazily — sizes here are small).
                let mut ds: Vec<f64> = found.iter().map(|f| f.1).collect();
                ds.sort_by(f64::total_cmp);
                ds[m - 1]
            }
        };
        while let Some(v) = queue.pop_front() {
            let d = self.pts[v].dist(q);
            if d > bound(found) {
                continue;
            }
            found.push((v, d));
            for w in self.vertex_neighbors(v) {
                if !visited[w] {
                    visited[w] = true;
                    if self.pts[w].dist(q) <= bound(found) {
                        queue.push_back(w);
                    }
                }
            }
        }
        found.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        found.truncate(m);
    }

    /// Exhaustive Delaunay validity check (test helper): no input point lies
    /// strictly inside the circumcircle of any real triangle.
    pub fn check_delaunay(&self) -> bool {
        if self.degenerate {
            return true;
        }
        for t in self.tris.iter().filter(|t| t.alive) {
            if Self::ghost_idx(t).is_some() {
                continue;
            }
            let (a, b, c) = (
                self.pts[t.v[0] as usize],
                self.pts[t.v[1] as usize],
                self.pts[t.v[2] as usize],
            );
            for (i, p) in self.pts.iter().enumerate() {
                if t.v.contains(&(i as u32)) {
                    continue;
                }
                if self.dup_of[i] != i as u32 {
                    continue; // duplicate of a vertex
                }
                if incircle(a, b, c, *p) > 0.0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    rng.random_range(-100.0..100.0),
                    rng.random_range(-100.0..100.0),
                )
            })
            .collect()
    }

    fn brute_nearest(pts: &[Point], q: Point) -> f64 {
        pts.iter().map(|p| p.dist(q)).fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn triangle_count_matches_euler() {
        // For n points with h on the hull: triangles = 2n - h - 2.
        let pts = random_points(200, 30);
        let d = Delaunay::new(&pts);
        assert!(!d.is_degenerate());
        let tris = d.triangles();
        let hull = unn_geom::hull::convex_hull(&pts);
        assert_eq!(tris.len(), 2 * pts.len() - hull.len() - 2);
        assert!(d.check_delaunay());
    }

    #[test]
    fn delaunay_property_random() {
        for seed in 31..36 {
            let pts = random_points(120, seed);
            let d = Delaunay::new(&pts);
            assert!(d.check_delaunay(), "seed {seed}");
        }
    }

    #[test]
    fn delaunay_on_grid_with_cocircular_points() {
        // Regular grid: maximal cocircularity stress for the exact incircle.
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        let d = Delaunay::new(&pts);
        assert!(d.check_delaunay());
        let q = Point::new(3.2, 4.7);
        let (_, dist) = d.nearest(q).unwrap();
        assert!((dist - brute_nearest(&pts, q)).abs() < 1e-12);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(300, 40);
        let d = Delaunay::new(&pts);
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..300 {
            let q = Point::new(
                rng.random_range(-150.0..150.0),
                rng.random_range(-150.0..150.0),
            );
            let (_, dist) = d.nearest(q).unwrap();
            let want = brute_nearest(&pts, q);
            assert!((dist - want).abs() < 1e-9, "q={q:?} got={dist} want={want}");
        }
    }

    #[test]
    fn m_nearest_matches_brute_force() {
        let pts = random_points(200, 45);
        let d = Delaunay::new(&pts);
        let mut rng = SmallRng::seed_from_u64(46);
        for _ in 0..50 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            for m in [1usize, 5, 20, 200] {
                let got = d.m_nearest(q, m);
                let mut want: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
                want.sort_by(f64::total_cmp);
                want.truncate(m);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.1 - w).abs() < 1e-12, "m={m}");
                }
            }
        }
        // Degenerate fallback path.
        let col: Vec<Point> = (0..8).map(|i| Point::new(i as f64, 0.0)).collect();
        let dd = Delaunay::new(&col);
        let got = dd.m_nearest(Point::new(2.2, 1.0), 3);
        assert_eq!(got[0].0, 2);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn degenerate_inputs() {
        // Empty.
        assert!(Delaunay::new(&[]).nearest(Point::ORIGIN).is_none());
        // Single point.
        let d = Delaunay::new(&[Point::new(1.0, 1.0)]);
        assert!(d.is_degenerate());
        assert_eq!(d.nearest(Point::ORIGIN).unwrap().0, 0);
        // Collinear points.
        let col: Vec<Point> = (0..10)
            .map(|i| Point::new(i as f64, 2.0 * i as f64))
            .collect();
        let d = Delaunay::new(&col);
        assert!(d.is_degenerate());
        let (id, _) = d.nearest(Point::new(4.1, 8.3)).unwrap();
        assert_eq!(id, 4);
    }

    #[test]
    fn duplicates_map_to_representative() {
        let mut pts = random_points(50, 42);
        pts.push(pts[7]);
        pts.push(pts[7]);
        let d = Delaunay::new(&pts);
        assert!(d.check_delaunay());
        // Query exactly at the duplicated point.
        let (id, dist) = d.nearest(pts[7]).unwrap();
        assert_eq!(dist, 0.0);
        assert_eq!(id, 7);
    }

    #[test]
    fn points_on_hull_edge() {
        // Insert a point exactly on the hull edge of earlier points.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 3.0),
            Point::new(2.0, 0.0), // on hull edge
            Point::new(1.0, 0.0), // also on hull edge
        ];
        let d = Delaunay::new(&pts);
        assert!(d.check_delaunay());
        let (id, _) = d.nearest(Point::new(1.1, -0.5)).unwrap();
        assert_eq!(id, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_nearest_agrees(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..60),
            qx in -70.0f64..70.0, qy in -70.0f64..70.0,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let d = Delaunay::new(&pts);
            let q = Point::new(qx, qy);
            let (_, dist) = d.nearest(q).unwrap();
            prop_assert!((dist - brute_nearest(&pts, q)).abs() < 1e-9);
        }

        #[test]
        fn prop_delaunay_valid(
            pts in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 3..40),
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let d = Delaunay::new(&pts);
            prop_assert!(d.check_delaunay());
        }

        #[test]
        fn prop_integer_coords_cocircular(
            pts in proptest::collection::vec((0i32..12, 0i32..12), 3..50),
        ) {
            // Integer coordinates force many exactly-cocircular quadruples.
            let pts: Vec<Point> = pts.into_iter()
                .map(|(x, y)| Point::new(x as f64, y as f64)).collect();
            let d = Delaunay::new(&pts);
            prop_assert!(d.check_delaunay());
            let q = Point::new(5.3, 5.7);
            let (_, dist) = d.nearest(q).unwrap();
            prop_assert!((dist - brute_nearest(&pts, q)).abs() < 1e-9);
        }
    }
}
