//! # unn-voronoi — Delaunay triangulations and Voronoi queries
//!
//! The classic certain-point Voronoi substrate of the paper's Monte-Carlo
//! structure (§4.2): per instantiation, the nearest site of a query point is
//! found via a Delaunay triangulation built with exact adaptive predicates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delaunay;
pub mod error;

pub use delaunay::Delaunay;
pub use error::VoronoiError;
