//! Typed errors for triangulation construction.

use unn_geom::Point;

/// Why a Delaunay triangulation could not be built.
#[derive(Clone, Debug, PartialEq)]
pub enum VoronoiError {
    /// An input site has a non-finite coordinate. The exact adaptive
    /// predicates are only meaningful over finite floats, so these are
    /// rejected up front rather than poisoning the incremental insertion.
    NonFiniteSite {
        /// Index of the offending site in the input slice.
        index: usize,
        /// The offending site.
        point: Point,
    },
}

impl core::fmt::Display for VoronoiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VoronoiError::NonFiniteSite { index, point } => {
                write!(
                    f,
                    "site {index} has a non-finite coordinate ({}, {})",
                    point.x, point.y
                )
            }
        }
    }
}

impl std::error::Error for VoronoiError {}
