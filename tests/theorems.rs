//! Theorem-level integration tests: small-scale executable checks of every
//! quantitative claim in the paper (the full-scale sweeps live in the
//! `unn-bench` harness; see EXPERIMENTS.md).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::geom::{Aabb, Point};
use unn::nonzero::{
    collinear_quadratic, count_distinct, disjoint_disks, equal_radii_cubic, mixed_radii_cubic,
    nonzero_vertices, GammaCurve,
};
use unn::quantify::ProbabilisticVoronoi;

/// Theorem 2.7: the mixed-radii construction realizes ≥ 4m³ vertices.
#[test]
fn thm_2_7_cubic_lower_bound() {
    for m in [1usize, 2, 3] {
        let inst = mixed_radii_cubic(m);
        let verts = nonzero_vertices(&inst.disks, 1e-9);
        let distinct = count_distinct(&verts, inst.snap);
        assert!(
            distinct >= inst.predicted_vertices,
            "m={m}: {distinct} < {}",
            inst.predicted_vertices
        );
    }
}

/// Theorem 2.8: the equal-radii construction realizes ≥ m³ vertices.
#[test]
fn thm_2_8_equal_radius_lower_bound() {
    for m in [2usize, 3, 4] {
        let inst = equal_radii_cubic(m);
        let verts = nonzero_vertices(&inst.disks, 1e-9);
        let distinct = count_distinct(&verts, inst.snap);
        assert!(
            distinct >= inst.predicted_vertices,
            "m={m}: {distinct} < {}",
            inst.predicted_vertices
        );
    }
}

/// Theorem 2.10 (lower bound): the collinear construction realizes the
/// paper's explicit Ω(n²) vertex list.
#[test]
fn thm_2_10_quadratic_lower_bound() {
    let inst = collinear_quadratic(4);
    let verts = nonzero_vertices(&inst.disks, 1e-9);
    let distinct = count_distinct(&verts, inst.snap);
    assert!(distinct >= inst.predicted_vertices);
}

/// Theorem 2.10 (upper bound): for disjoint disks with radius ratio λ, the
/// vertex count stays well below the unrestricted cubic regime. We check
/// the growth exponent over n is ≈ 2 (log-log slope < 2.6), while random
/// *overlapping* disks may grow faster.
#[test]
fn thm_2_10_disjoint_growth_is_quadratic() {
    let mut rng = SmallRng::seed_from_u64(400);
    let count_at = |n: usize, rng: &mut SmallRng| -> usize {
        let disks = disjoint_disks(n, 2.0, rng);
        let verts = nonzero_vertices(&disks, 1e-9);
        count_distinct(&verts, 1e-6)
    };
    let c1 = count_at(12, &mut rng).max(1);
    let c2 = count_at(48, &mut rng).max(1);
    let slope = ((c2 as f64 / c1 as f64).ln()) / (4.0f64).ln();
    assert!(
        slope < 2.7,
        "disjoint disks grew with exponent {slope:.2} (c1={c1}, c2={c2})"
    );
}

/// Lemma 2.2: each γ_i envelope has O(n) arcs.
#[test]
fn lemma_2_2_linear_breakpoints() {
    let mut rng = SmallRng::seed_from_u64(410);
    for &n in &[8usize, 16, 32, 64] {
        let disks: Vec<unn::geom::Disk> = (0..n)
            .map(|_| {
                unn::geom::Disk::new(
                    Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)),
                    rng.random_range(0.5..3.0),
                )
            })
            .collect();
        let g = GammaCurve::build(&disks, 0);
        assert!(g.num_arcs() <= 2 * n + 2, "n={n}: {} arcs", g.num_arcs());
    }
}

/// Lemma 4.1: the k=2 construction's probabilistic Voronoi diagram grows
/// around Θ(n⁴) inside the unit disk.
#[test]
fn lemma_4_1_vpr_quartic_growth() {
    let cells = |n: usize| {
        let objs = ProbabilisticVoronoi::lower_bound_instance(n);
        let vpr = ProbabilisticVoronoi::build(
            &objs,
            Aabb::new(Point::new(-1.5, -1.5), Point::new(1.5, 1.5)),
        );
        vpr.num_distinct_cells(1e-12)
    };
    let c4 = cells(4);
    let c8 = cells(8);
    // n^4 predicts a 16x ratio; even with boundary effects it must exceed
    // the cubic ratio 8.
    assert!(
        c8 as f64 > 7.0 * c4 as f64,
        "VPr growth too slow: {c4} -> {c8}"
    );
}

/// Theorem 4.3 (shape): the Monte-Carlo error decreases like 1/sqrt(s).
#[test]
fn thm_4_3_mc_error_scaling() {
    use unn::distr::DiscreteDistribution;
    use unn::quantify::{quantification_exact, McBackend, MonteCarloIndex};
    use unn::Uncertain;
    let mut rng = SmallRng::seed_from_u64(420);
    let objs: Vec<DiscreteDistribution> = (0..8)
        .map(|_| {
            let c = Point::new(rng.random_range(-10.0..10.0), rng.random_range(-10.0..10.0));
            DiscreteDistribution::uniform(
                (0..3)
                    .map(|_| {
                        Point::new(
                            c.x + rng.random_range(-3.0..3.0),
                            c.y + rng.random_range(-3.0..3.0),
                        )
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect();
    let points: Vec<Uncertain> = objs.iter().cloned().map(Uncertain::Discrete).collect();
    // Average max-error over a query grid, for increasing s.
    let mut errs = Vec::new();
    for &s in &[100usize, 1600] {
        let mut rng = SmallRng::seed_from_u64(421);
        let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
        let mut total = 0.0;
        let mut count = 0;
        for gx in -3..=3 {
            for gy in -3..=3 {
                let q = Point::new(gx as f64 * 4.0, gy as f64 * 4.0);
                let exact = quantification_exact(&objs, q);
                let est = mc.query(q);
                let err = est
                    .iter()
                    .zip(&exact)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                total += err;
                count += 1;
            }
        }
        errs.push(total / count as f64);
    }
    // s grew 16x -> error should shrink ~4x; accept >= 2x.
    assert!(
        errs[1] * 2.0 <= errs[0] || errs[1] < 0.01,
        "error did not shrink: {errs:?}"
    );
}

/// Theorem 4.7: spiral-search cost (retrieved m) is independent of n and
/// grows with ρ·k·ln(1/ε).
#[test]
fn thm_4_7_m_independent_of_n() {
    use unn::distr::DiscreteDistribution;
    use unn::quantify::SpiralIndex;
    let build = |n: usize| {
        let mut rng = SmallRng::seed_from_u64(430);
        let objs: Vec<DiscreteDistribution> = (0..n)
            .map(|_| {
                let c = Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0));
                DiscreteDistribution::new(vec![c, Point::new(c.x + 1.0, c.y)], vec![1.0, 2.0])
                    .unwrap()
            })
            .collect();
        SpiralIndex::build(&objs)
    };
    let small = build(10);
    let large = build(1000);
    assert_eq!(small.m_for(0.01), large.m_for(0.01));
    assert!((small.spread() - 2.0).abs() < 1e-9);
}
