//! Cross-crate integration tests: every query path must agree on shared
//! instances, end to end.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::distr::DiscreteDistribution;
use unn::geom::{Aabb, Disk, Point};
use unn::nonzero::{DiskNonzeroIndex, NonzeroSubdivision};
use unn::quantify::{
    quantification_exact, quantification_numeric, McBackend, MonteCarloIndex, ProbabilisticVoronoi,
    SpiralIndex,
};
use unn::{PnnConfig, PnnIndex, Uncertain, UncertainPoint};

fn random_disks(n: usize, seed: u64) -> Vec<Disk> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Disk::new(
                Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0)),
                rng.random_range(0.5..4.0),
            )
        })
        .collect()
}

fn random_discrete(n: usize, k: usize, seed: u64) -> Vec<DiscreteDistribution> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.random_range(-25.0..25.0);
            let cy: f64 = rng.random_range(-25.0..25.0);
            let pts: Vec<Point> = (0..k)
                .map(|_| {
                    Point::new(
                        cx + rng.random_range(-3.0..3.0),
                        cy + rng.random_range(-3.0..3.0),
                    )
                })
                .collect();
            let ws: Vec<f64> = (0..k).map(|_| rng.random_range(0.2..4.0)).collect();
            DiscreteDistribution::new(pts, ws).unwrap()
        })
        .collect()
}

/// Every estimator agrees (within its tolerance) with the exact sweep on a
/// shared discrete instance.
#[test]
fn all_estimators_agree_on_discrete_instance() {
    let objs = random_discrete(10, 4, 300);
    let points: Vec<Uncertain> = objs.iter().cloned().map(Uncertain::Discrete).collect();
    let spiral = SpiralIndex::build(&objs);
    let mut rng = SmallRng::seed_from_u64(301);
    let eps = 0.04;
    let s = MonteCarloIndex::samples_for_queries(eps, 0.01, 10, 25);
    let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
    let vpr_box = Aabb::new(Point::new(-40.0, -40.0), Point::new(40.0, 40.0));
    // V_Pr is O(N^4): keep a subset for it.
    let small: Vec<DiscreteDistribution> = objs[..4].to_vec();
    let vpr = ProbabilisticVoronoi::build(&small, vpr_box);

    let mut qrng = SmallRng::seed_from_u64(302);
    for _ in 0..25 {
        let q = Point::new(
            qrng.random_range(-35.0..35.0),
            qrng.random_range(-35.0..35.0),
        );
        let exact = quantification_exact(&objs, q);
        // Spiral: one-sided eps.
        let sp = spiral.query(q, eps);
        for (a, e) in sp.iter().zip(&exact) {
            assert!(*a <= e + 1e-9 && *e <= a + eps + 1e-9);
        }
        // Monte-Carlo: two-sided eps (probabilistic; seed fixed).
        let m = mc.query(q);
        for (a, e) in m.iter().zip(&exact) {
            assert!((a - e).abs() <= eps, "mc={a} exact={e}");
        }
        // Numeric integration on the Uncertain wrappers.
        let nu = quantification_numeric(&points, q, 3000);
        let exact_small = quantification_exact(&small, q);
        let v = vpr.query(q);
        for (a, e) in v.iter().zip(&exact_small) {
            assert!((a - e).abs() <= 1e-9, "vpr={a} exact={e}");
        }
        for (a, e) in nu.iter().zip(&exact) {
            assert!((a - e).abs() <= 0.02, "numeric={a} exact={e}");
        }
    }
}

/// NN!=0 structures agree pairwise, and the quantification probabilities are
/// consistent with the candidate sets (pi > 0 implies candidate).
#[test]
fn nonzero_consistency_disks() {
    let disks = random_disks(20, 310);
    let idx = DiskNonzeroIndex::new(&disks);
    let bbox = Aabb::new(Point::new(-45.0, -45.0), Point::new(45.0, 45.0));
    let sub = NonzeroSubdivision::build(&disks, bbox, 1e-3);
    let points: Vec<Uncertain> = disks
        .iter()
        .map(|d| Uncertain::uniform_disk(d.center, d.radius))
        .collect();
    let mut rng = SmallRng::seed_from_u64(311);
    let mc = MonteCarloIndex::build(&points, 3000, McBackend::KdTree, &mut rng);

    let mut qrng = SmallRng::seed_from_u64(312);
    for _ in 0..200 {
        let q = Point::new(
            qrng.random_range(-40.0..40.0),
            qrng.random_range(-40.0..40.0),
        );
        let a = idx.query(q);
        let b = idx.query_naive(q);
        assert_eq!(a, b);
        // Monte-Carlo mass must be confined to the candidate set.
        let pi = mc.query(q);
        for (i, &p) in pi.iter().enumerate() {
            if p > 0.0 {
                assert!(
                    a.contains(&i),
                    "object {i} won a round at {q:?} but is not in NN!=0 = {a:?}"
                );
            }
        }
    }
    // Subdivision agreement (boundary slivers aside).
    let mut agree = 0;
    let trials = 500;
    for _ in 0..trials {
        let q = Point::new(
            qrng.random_range(-40.0..40.0),
            qrng.random_range(-40.0..40.0),
        );
        if sub.query(q) == idx.query(q) {
            agree += 1;
        }
    }
    assert!(agree >= trials * 98 / 100, "only {agree}/{trials} agreed");
}

/// The PnnIndex facade gives the same answers as the underlying structures.
#[test]
fn facade_matches_components() {
    let objs = random_discrete(8, 3, 320);
    let points: Vec<Uncertain> = objs.iter().cloned().map(Uncertain::Discrete).collect();
    let idx = PnnIndex::build(
        points,
        PnnConfig {
            epsilon: 0.03,
            seed: 99,
            ..PnnConfig::default()
        },
    );
    let mut qrng = SmallRng::seed_from_u64(321);
    for _ in 0..50 {
        let q = Point::new(
            qrng.random_range(-30.0..30.0),
            qrng.random_range(-30.0..30.0),
        );
        let (exact, _) = idx.quantify_exact(q);
        let direct = quantification_exact(&objs, q);
        assert_eq!(exact, direct);
        let (approx, _) = idx.quantify(q);
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() <= 0.03 + 1e-9);
        }
        // Everything with positive probability is a nonzero candidate.
        let nz = idx.nn_nonzero(q);
        for (i, &p) in exact.iter().enumerate() {
            if p > 1e-12 {
                assert!(nz.contains(&i));
            }
        }
    }
}

/// Mixed continuous models: Monte-Carlo vs numeric integration cross-check
/// through the facade.
#[test]
fn facade_continuous_cross_check() {
    let mut rng = SmallRng::seed_from_u64(330);
    let points: Vec<Uncertain> = (0..8)
        .map(|i| {
            let c = Point::new(rng.random_range(-15.0..15.0), rng.random_range(-15.0..15.0));
            if i % 2 == 0 {
                Uncertain::uniform_disk(c, rng.random_range(1.0..3.0))
            } else {
                Uncertain::Gaussian(unn::TruncatedGaussian::with_sigmas(c, 0.8, 3.0))
            }
        })
        .collect();
    let idx = PnnIndex::build(
        points,
        PnnConfig {
            epsilon: 0.02,
            max_mc_rounds: 40_000,
            numeric_steps: 3000,
            ..PnnConfig::default()
        },
    );
    let mut qrng = SmallRng::seed_from_u64(331);
    for _ in 0..10 {
        let q = Point::new(
            qrng.random_range(-18.0..18.0),
            qrng.random_range(-18.0..18.0),
        );
        let (mc, _) = idx.quantify(q);
        let (nu, _) = idx.quantify_exact(q);
        for (a, b) in mc.iter().zip(&nu) {
            assert!((a - b).abs() < 0.04, "mc={a} numeric={b} at {q:?}");
        }
    }
}

/// Support geometry invariant: delta <= expected distance <= Delta for every
/// model, and NN!=0 always contains the expected-distance NN candidate
/// whenever that candidate can be nearest.
#[test]
fn geometric_sanity_across_models() {
    let mut rng = SmallRng::seed_from_u64(340);
    let points: Vec<Uncertain> = (0..12)
        .map(|i| {
            let c = Point::new(rng.random_range(-10.0..10.0), rng.random_range(-10.0..10.0));
            match i % 4 {
                0 => Uncertain::uniform_disk(c, 1.0),
                1 => Uncertain::certain(c),
                2 => Uncertain::Gaussian(unn::TruncatedGaussian::with_sigmas(c, 0.5, 2.5)),
                _ => Uncertain::Histogram(unn::HistogramDistribution::new(
                    Aabb::new(
                        Point::new(c.x - 1.0, c.y - 1.0),
                        Point::new(c.x + 1.0, c.y + 1.0),
                    ),
                    2,
                    2,
                    vec![1.0, 2.0, 3.0, 4.0],
                )),
            }
        })
        .collect();
    let idx = PnnIndex::new(points.clone());
    let mut qrng = SmallRng::seed_from_u64(341);
    for _ in 0..50 {
        let q = Point::new(
            qrng.random_range(-15.0..15.0),
            qrng.random_range(-15.0..15.0),
        );
        for p in &points {
            let e = p.expected_dist(q);
            assert!(e >= p.min_dist(q) - 1e-6);
            assert!(e <= p.max_dist(q) + 1e-6);
        }
        let nz = idx.nn_nonzero(q);
        assert!(!nz.is_empty());
    }
}
