//! Observe-layer regression tests for the dynamic read path (compiled only
//! under `--features observe`): shared-bound pruning must *measurably* skip
//! blocks — not just stay correct — and hot-block promotion must announce
//! itself through the lifecycle counters.

#![cfg(feature = "observe")]

use unn::dynamic::{DynamicPnnConfig, DynamicPnnIndex};
use unn::geom::Point;
use unn::{PnnConfig, Uncertain};

fn config() -> DynamicPnnConfig {
    DynamicPnnConfig {
        base: PnnConfig {
            epsilon: 0.05,
            delta: 0.01,
            ..PnnConfig::default()
        },
        mc_rounds: 64,
        ..DynamicPnnConfig::default()
    }
}

fn disk(x: f64, y: f64) -> Uncertain {
    Uncertain::uniform_disk(Point::new(x, y), 0.5)
}

/// Two well-separated clusters inserted in time order, so the logarithmic
/// cascade leaves cluster A in its own block: a query deep inside cluster B
/// must probe strictly fewer blocks on the pruned path, with a
/// bit-identical answer.
#[test]
fn pruning_probes_strictly_fewer_blocks_when_separated() {
    let mut index =
        DynamicPnnIndex::with_config(config()).unwrap_or_else(|e| panic!("config: {e}"));
    // Cluster A: 8 inserts cascade into one block of 8.
    for i in 0..8 {
        index.insert(disk(f64::from(i) * 0.7, f64::from(i % 3) * 0.7));
    }
    // Cluster B: 7 more, far away — blocks of 4 + 2 + 1, all pure-B.
    for i in 0..7 {
        index.insert(disk(
            1000.0 + f64::from(i) * 0.7,
            1000.0 + f64::from(i % 3) * 0.7,
        ));
    }
    let snap = index.snapshot();
    assert_eq!(snap.blocks(), 4, "15 time-ordered inserts → 8|4|2|1 blocks");
    let q = Point::new(1001.0, 1001.0);

    unn_observe::begin_query();
    let pruned = snap.nn_nonzero(q);
    let with_pruning = unn_observe::take_counters();

    unn_observe::begin_query();
    let unpruned = snap.nn_nonzero_unpruned(q);
    let without = unn_observe::take_counters();

    assert_eq!(pruned, unpruned, "answers must not depend on pruning");
    assert_eq!(
        without.dyn_blocks_probed, 4,
        "the linear fold touches every block"
    );
    assert!(
        with_pruning.dyn_blocks_probed < without.dyn_blocks_probed,
        "pruned path probed {} blocks, unpruned {} — cluster A must be skipped",
        with_pruning.dyn_blocks_probed,
        without.dyn_blocks_probed
    );
    assert!(
        with_pruning.kd_nodes_pruned > 0,
        "capped descents must report pruned subtrees"
    );
}

/// Hot-block promotion shows up in the counters: the promoting mutation
/// emits exactly one `dyn_promotions` tick (and, with no same-class pair at
/// that insert, no merge tick), and collapses the structure to one block.
#[test]
fn promotion_emits_expected_counter_deltas() {
    let mut index = DynamicPnnIndex::with_config(DynamicPnnConfig {
        hot_promote_ratio: Some(4.0),
        ..config()
    })
    .unwrap_or_else(|e| panic!("config: {e}"));
    for i in 0..6 {
        index.insert(disk(f64::from(i), 0.0));
    }
    let snap = index.snapshot();
    assert_eq!(snap.blocks(), 2, "6 inserts → 4|2 blocks");
    // 28 reads over the 7 updates-at-next-insert reach the ratio-4 bound.
    for _ in 0..28 {
        snap.nn_nonzero(Point::new(0.0, 0.0));
    }

    unn_observe::begin_query();
    index.insert(disk(100.0, 0.0));
    let counters = unn_observe::take_counters();

    assert_eq!(
        counters.dyn_promotions, 1,
        "promotion must tick its counter"
    );
    assert_eq!(
        counters.dyn_merges, 0,
        "4|2|1 has no same-class pair — the collapse is promotion, not a cascade merge"
    );
    assert_eq!(
        index.snapshot().blocks(),
        1,
        "promotion merges to one block"
    );
    assert_eq!(index.stats().promotions, 1);

    // The next mutation starts from a cold read counter: no double-fire.
    unn_observe::begin_query();
    index.insert(disk(101.0, 0.0));
    assert_eq!(unn_observe::take_counters().dyn_promotions, 0);
}
