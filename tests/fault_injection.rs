//! Fault-injection harness: chaos distributions and an adversarial corpus
//! driven through every public entry point of the resilient pipeline.
//!
//! The contract under test: **zero panics escape the `try_*` / `*_guarded`
//! / `*_isolated` API** — every poisoned or degenerate input yields a typed
//! [`UnnError`] or a valid (possibly [`QuantifyOutcome::Degraded`]) answer.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::distr::discrete::DiscreteError;
use unn::geom::{Aabb, Disk, Point};
use unn::nonzero::{DiscreteNonzeroIndex, DiskNonzeroIndex, NonzeroError};
use unn::quantify::ProbabilisticVoronoi;
use unn::voronoi::Delaunay;
use unn::{
    BatchOptions, ChaosDistribution, ChaosMode, DiscreteDistribution, DistrError,
    HistogramDistribution, PnnConfig, PnnIndex, QuantifyMethod, QuantifyOutcome, QueryBudget,
    TruncatedGaussian, Uncertain, UniformDisk, UnnError, ValidationPolicy,
};

fn test_config() -> PnnConfig {
    PnnConfig {
        // Keep numeric integration affordable on the continuous corpus.
        numeric_steps: 128,
        max_mc_rounds: 2_000,
        ..PnnConfig::default()
    }
}

fn clean_disks(n: usize, seed: u64) -> Vec<Uncertain> {
    unn_testkit::corpus::uniform_disks(n, seed, 0.5, 2.0)
}

fn clean_discrete(n: usize, k: usize, seed: u64) -> Vec<Uncertain> {
    unn_testkit::corpus::uniform_discrete(n, k, seed)
}

// ---------------------------------------------------------------------
// Chaos distributions through the query entry points.
// ---------------------------------------------------------------------

#[test]
fn poison_query_is_caught_by_try_entry_points() {
    let poison = Point::new(1234.5678, -987.6543);
    let mut points = clean_disks(8, 900);
    points.push(Uncertain::Chaos(ChaosDistribution::new(
        Uncertain::uniform_disk(Point::new(3.0, 3.0), 1.0),
        ChaosMode::PanicAtQuery(poison),
    )));
    let idx = PnnIndex::build(points, test_config());

    // Clean queries sail through.
    let ok = idx.try_nn_nonzero(Point::new(1.0, 1.0)).unwrap();
    assert!(!ok.is_empty());

    // The poison query panics below the API; the boundary converts it.
    match idx.try_nn_nonzero(poison) {
        Err(UnnError::QueryPanicked { message }) => {
            assert!(message.contains("chaos"), "unexpected payload: {message}")
        }
        other => panic!("expected QueryPanicked, got {other:?}"),
    }

    // Guarded quantification at the poison point: the exact path here is
    // numeric integration, which evaluates distance CDFs at q and trips
    // the chaos check — caught the same way.
    match idx.quantify_guarded(poison, QueryBudget::unlimited()) {
        Err(UnnError::QueryPanicked { .. }) => {}
        Ok(outcome) => assert_eq!(outcome.pi().len(), idx.len()),
        Err(other) => panic!("expected QueryPanicked or Ok, got {other:?}"),
    }

    // Non-finite queries are typed errors, not panics.
    for bad in [
        Point::new(f64::NAN, 0.0),
        Point::new(0.0, f64::INFINITY),
        Point::new(f64::NEG_INFINITY, f64::NAN),
    ] {
        assert!(matches!(
            idx.try_nn_nonzero(bad),
            Err(UnnError::DegenerateGeometry { .. })
        ));
        assert!(matches!(
            idx.quantify_guarded(bad, QueryBudget::unlimited()),
            Err(UnnError::DegenerateGeometry { .. })
        ));
    }
}

#[test]
fn chaos_sampling_at_build_is_caught_by_try_build() {
    // The chaos point passes validation (it delegates to its inner model)
    // but panics on its 5th sample — which fires inside the Monte-Carlo
    // construction. try_build must contain it.
    let mut points = clean_disks(4, 901);
    points.push(Uncertain::Chaos(ChaosDistribution::new(
        Uncertain::uniform_disk(Point::new(0.0, 0.0), 1.0),
        ChaosMode::PanicOnSample(5),
    )));
    match PnnIndex::try_build(points, test_config(), ValidationPolicy::Strict) {
        Err(UnnError::QueryPanicked { message }) => {
            assert!(message.contains("chaos"), "unexpected payload: {message}")
        }
        Ok(_) => panic!("build must trip the 5th-sample fault"),
        Err(other) => panic!("expected QueryPanicked, got {other:?}"),
    }

    // NaN emission instead of a panic: the build must either contain a
    // downstream panic or complete; queries stay guarded either way.
    let mut points = clean_disks(4, 902);
    points.push(Uncertain::Chaos(ChaosDistribution::new(
        Uncertain::uniform_disk(Point::new(0.0, 0.0), 1.0),
        ChaosMode::NanOnSample(3),
    )));
    if let Ok(idx) = PnnIndex::try_build(points, test_config(), ValidationPolicy::Strict) {
        let r = idx.try_nn_nonzero(Point::new(1.0, 1.0));
        assert!(r.is_ok() || matches!(r, Err(UnnError::QueryPanicked { .. })));
        let g = idx.quantify_guarded(Point::new(1.0, 1.0), QueryBudget::unlimited());
        assert!(g.is_ok() || matches!(g, Err(UnnError::QueryPanicked { .. })));
    }
}

#[test]
fn isolated_batches_contain_the_poison_slot() {
    let poison = Point::new(777.125, -333.25);
    let mut points = clean_disks(6, 903);
    points.push(Uncertain::Chaos(ChaosDistribution::new(
        Uncertain::uniform_disk(Point::new(-2.0, 4.0), 1.5),
        ChaosMode::PanicAtQuery(poison),
    )));
    let idx = PnnIndex::build(points, test_config());
    let mut rng = SmallRng::seed_from_u64(904);
    let mut queries: Vec<Point> = (0..64)
        .map(|_| Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0)))
        .collect();
    queries[17] = poison;
    queries[40] = Point::new(f64::NAN, 1.0);

    let out = idx.nn_nonzero_batch_isolated_with(&queries, &BatchOptions::with_threads(4));
    assert_eq!(out.len(), queries.len());
    for (i, slot) in out.iter().enumerate() {
        match i {
            17 => assert!(matches!(slot, Err(UnnError::QueryPanicked { .. }))),
            40 => assert!(matches!(slot, Err(UnnError::DegenerateGeometry { .. }))),
            _ => assert_eq!(slot.as_ref().unwrap(), &idx.nn_nonzero(queries[i])),
        }
    }

    // quantify / adaptive / guarded isolated batches run on the prebuilt
    // Monte-Carlo structure (concrete instantiations — no chaos on the
    // query path), so the poison slot is fine there but the NaN slot must
    // still error and everything else must match sequential.
    let qout = idx.quantify_batch_isolated_with(&queries, &BatchOptions::with_threads(4));
    for (i, slot) in qout.iter().enumerate() {
        match i {
            40 => assert!(matches!(slot, Err(UnnError::DegenerateGeometry { .. }))),
            _ => assert_eq!(slot.as_ref().unwrap(), &idx.quantify(queries[i])),
        }
    }
    let aout = idx.quantify_adaptive_batch_isolated_with(
        &queries,
        0.1,
        0.01,
        &BatchOptions::with_threads(4),
    );
    for (i, slot) in aout.iter().enumerate() {
        match i {
            40 => assert!(matches!(slot, Err(UnnError::DegenerateGeometry { .. }))),
            _ => assert_eq!(
                slot.as_ref().unwrap(),
                &idx.quantify_adaptive(queries[i], 0.1, 0.01)
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Adversarial corpus through build + query.
// ---------------------------------------------------------------------

fn adversarial_corpus() -> Vec<(&'static str, Vec<Uncertain>)> {
    let coincident = vec![
        Uncertain::Discrete(DiscreteDistribution::certain(Point::new(1.0, 1.0))),
        Uncertain::Discrete(DiscreteDistribution::certain(Point::new(1.0, 1.0))),
        Uncertain::Discrete(DiscreteDistribution::certain(Point::new(1.0, 1.0))),
    ];
    let collinear = (0..6)
        .map(|i| Uncertain::Discrete(DiscreteDistribution::certain(Point::new(i as f64, 0.0))))
        .collect();
    let cocircular = (0..8)
        .map(|i| {
            let a = std::f64::consts::FRAC_PI_4 * i as f64;
            Uncertain::Discrete(DiscreteDistribution::certain(Point::new(a.cos(), a.sin())))
        })
        .collect();
    let huge = vec![
        Uncertain::uniform_disk(Point::new(1e308, 0.0), 1.0),
        Uncertain::uniform_disk(Point::new(-1e308, 0.0), 1.0),
        Uncertain::uniform_disk(Point::new(0.0, 1e308), 1.0),
    ];
    let denormal = vec![
        Uncertain::Discrete(DiscreteDistribution::certain(Point::new(5e-324, 0.0))),
        Uncertain::Discrete(DiscreteDistribution::certain(Point::new(0.0, 1e-320))),
        Uncertain::Discrete(DiscreteDistribution::certain(Point::new(-3e-322, 2e-323))),
    ];
    vec![
        ("coincident", coincident),
        ("collinear", collinear),
        ("cocircular", cocircular),
        ("huge-scale", huge),
        ("denormal", denormal),
    ]
}

#[test]
fn adversarial_corpus_never_escapes_the_api() {
    let queries = [
        Point::new(0.0, 0.0),
        Point::new(1.0, 1.0),
        Point::new(1e308, 1e308),
        Point::new(5e-324, -5e-324),
        Point::new(f64::NAN, 0.0),
    ];
    for (name, corpus) in adversarial_corpus() {
        for policy in [ValidationPolicy::Strict, ValidationPolicy::Repair] {
            let built = PnnIndex::try_build(corpus.clone(), test_config(), policy);
            let idx = match built {
                Ok(idx) => idx,
                // Rejection must be typed, and only for the corpus that
                // actually contains duplicates under Strict.
                Err(UnnError::DegenerateGeometry { .. }) => {
                    assert_eq!(
                        (name, policy),
                        ("coincident", ValidationPolicy::Strict),
                        "only coincident/Strict may reject"
                    );
                    continue;
                }
                Err(other) => panic!("{name}/{policy:?}: unexpected error {other:?}"),
            };
            if name == "coincident" && policy == ValidationPolicy::Repair {
                assert_eq!(idx.len(), 1, "repair must dedupe identical points");
            }
            for &q in &queries {
                // Every entry point returns a typed result; a panic would
                // fail this test at the harness level.
                let nz = idx.try_nn_nonzero(q);
                if q.is_finite() {
                    assert!(nz.is_ok(), "{name}: nn_nonzero({q:?}) -> {nz:?}");
                } else {
                    assert!(matches!(nz, Err(UnnError::DegenerateGeometry { .. })));
                }
                for budget in [QueryBudget::unlimited(), QueryBudget::with_work(4)] {
                    match idx.quantify_guarded(q, budget) {
                        Ok(outcome) => assert_eq!(outcome.pi().len(), idx.len(), "{name}"),
                        Err(
                            UnnError::DegenerateGeometry { .. }
                            | UnnError::BudgetExhausted { .. }
                            | UnnError::QueryPanicked { .. },
                        ) => {}
                        Err(other) => panic!("{name}: unexpected error {other:?}"),
                    }
                }
            }
            let finite_queries: Vec<Point> =
                queries.iter().copied().filter(|q| q.is_finite()).collect();
            for slot in idx.nn_nonzero_batch_isolated(&finite_queries) {
                assert!(slot.is_ok(), "{name}: isolated batch slot failed: {slot:?}");
            }
        }
    }
}

#[test]
fn degenerate_sites_through_voronoi_layers() {
    // Collinear and cocircular site sets through the raw Delaunay and the
    // probabilistic Voronoi diagram: typed results, no panics.
    let collinear: Vec<Point> = (0..5)
        .map(|i| Point::new(i as f64, 2.0 * i as f64))
        .collect();
    let dt = Delaunay::try_new(&collinear).unwrap();
    assert!(dt.nearest(Point::new(1.1, 2.3)).is_some());
    assert!(Delaunay::try_new(&[Point::new(f64::NAN, 0.0)]).is_err());

    let cocircular: Vec<DiscreteDistribution> = (0..6)
        .map(|i| {
            let a = std::f64::consts::FRAC_PI_3 * i as f64;
            DiscreteDistribution::certain(Point::new(3.0 * a.cos(), 3.0 * a.sin()))
        })
        .collect();
    let bbox = Aabb::new(Point::new(-5.0, -5.0), Point::new(5.0, 5.0));
    let vpr = ProbabilisticVoronoi::try_build(&cocircular, bbox).unwrap();
    let pi = vpr.query(Point::new(0.1, 0.2));
    assert_eq!(pi.len(), cocircular.len());
    assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // Non-finite inputs are typed errors at both layers.
    assert!(ProbabilisticVoronoi::try_build(
        &cocircular,
        Aabb::new(Point::new(0.0, 0.0), Point::new(f64::INFINITY, 1.0)),
    )
    .is_err());
}

// ---------------------------------------------------------------------
// Typed constructor errors (distr + nonzero satellites).
// ---------------------------------------------------------------------

#[test]
fn distr_constructors_reject_bad_parameters() {
    let c = Point::new(0.0, 0.0);
    assert!(matches!(
        TruncatedGaussian::try_new(Point::new(f64::NAN, 0.0), 1.0, 3.0),
        Err(DistrError::NonFiniteCoordinate { .. })
    ));
    assert!(matches!(
        TruncatedGaussian::try_new(c, -1.0, 3.0),
        Err(DistrError::BadParameter { .. })
    ));
    assert!(matches!(
        TruncatedGaussian::try_new(c, 1.0, f64::INFINITY),
        Err(DistrError::BadParameter { .. })
    ));
    assert!(matches!(
        UniformDisk::try_from_center(c, f64::INFINITY),
        Err(DistrError::BadParameter { .. })
    ));
    assert!(matches!(
        UniformDisk::try_from_center(c, 0.0),
        Err(DistrError::BadParameter { .. })
    ));
    let bbox = Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
    assert!(matches!(
        HistogramDistribution::try_new(bbox, 2, 2, vec![1.0, -1.0, 1.0, 1.0]),
        Err(DistrError::BadParameter { .. })
    ));
    assert!(matches!(
        HistogramDistribution::try_new(bbox, 2, 2, vec![1.0; 3]),
        Err(DistrError::LengthMismatch { .. })
    ));
    assert!(matches!(
        HistogramDistribution::try_new(bbox, 0, 2, vec![]),
        Err(DistrError::EmptySupport { .. })
    ));
    assert!(matches!(
        DiscreteDistribution::new(vec![Point::new(0.0, 0.0)], vec![-1.0]),
        Err(DiscreteError::BadWeight(_))
    ));
    // Repair: drops the bad location, merges the duplicate, renormalizes.
    let repaired = DiscreteDistribution::repair(
        vec![
            Point::new(0.0, 0.0),
            Point::new(f64::NAN, 1.0),
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
        ],
        vec![1.0, 5.0, 1.0, 2.0],
    )
    .unwrap();
    assert_eq!(repaired.len(), 2);
    assert!((repaired.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
}

#[test]
fn nonzero_constructors_reject_bad_supports() {
    assert!(DiskNonzeroIndex::try_new(&[Disk::new(Point::new(0.0, 0.0), 1.0)]).is_ok());
    // Zero radius models a certain point: valid.
    assert!(DiskNonzeroIndex::try_new(&[Disk::new(Point::new(0.0, 0.0), 0.0)]).is_ok());
    // Disk::new asserts, so forge the bad values through the raw struct.
    let bad = Disk {
        center: Point::new(f64::NAN, 0.0),
        radius: 1.0,
    };
    assert!(matches!(
        DiskNonzeroIndex::try_new(&[bad]),
        Err(NonzeroError::NonFiniteDisk { index: 0 })
    ));
    let neg = Disk {
        center: Point::new(0.0, 0.0),
        radius: -1.0,
    };
    assert!(matches!(
        DiskNonzeroIndex::try_new(&[neg]),
        Err(NonzeroError::NegativeRadius { index: 0, .. })
    ));
    assert!(matches!(
        DiscreteNonzeroIndex::try_new(&[vec![Point::new(0.0, 0.0)], vec![]]),
        Err(NonzeroError::EmptySupport { index: 1 })
    ));
    assert!(matches!(
        DiscreteNonzeroIndex::try_new(&[vec![Point::new(0.0, f64::INFINITY)]]),
        Err(NonzeroError::NonFiniteLocation { index: 0, .. })
    ));
}

#[test]
fn invalid_configs_are_typed_errors() {
    for config in [
        PnnConfig {
            epsilon: 0.0,
            ..PnnConfig::default()
        },
        PnnConfig {
            epsilon: 1.5,
            ..PnnConfig::default()
        },
        PnnConfig {
            delta: 0.0,
            ..PnnConfig::default()
        },
        PnnConfig {
            delta: f64::NAN,
            ..PnnConfig::default()
        },
        PnnConfig {
            max_mc_rounds: 0,
            ..PnnConfig::default()
        },
        PnnConfig {
            numeric_steps: 0,
            ..PnnConfig::default()
        },
        PnnConfig {
            adaptive_min_rounds: 0,
            ..PnnConfig::default()
        },
    ] {
        assert!(matches!(
            PnnIndex::try_build(clean_disks(3, 905), config, ValidationPolicy::Strict),
            Err(UnnError::InvalidConfig { .. })
        ));
    }
}

// ---------------------------------------------------------------------
// Budgeted degradation.
// ---------------------------------------------------------------------

#[test]
fn budget_degrades_to_capped_adaptive_with_honest_epsilon() {
    let points = clean_discrete(10, 40, 906);
    let idx = PnnIndex::build(points, test_config());
    assert_eq!(idx.exact_work(), 400);
    let q = Point::new(2.0, -3.0);
    let (exact, _) = idx.quantify_exact(q);

    // Unlimited: the exact path, bit-identical to quantify_exact.
    let full = idx.quantify_within(q, QueryBudget::unlimited()).unwrap();
    assert!(!full.is_degraded());
    let QuantifyOutcome::Exact { pi, method, work } = &full else {
        panic!("expected Exact");
    };
    assert_eq!(method, &QuantifyMethod::ExactSweep);
    assert_eq!(pi, &exact);
    assert_eq!(*work, 400);

    // A budget below the exact sweep: degrade to capped adaptive MC and
    // certify the achieved accuracy honestly.
    let budget = QueryBudget::with_work(128);
    let outcome = idx.quantify_within(q, budget).unwrap();
    let QuantifyOutcome::Degraded {
        pi,
        achieved_epsilon,
        rounds_used,
        work,
    } = &outcome
    else {
        panic!("expected Degraded, got {outcome:?}");
    };
    assert!(*rounds_used <= 128 && *work <= 128);
    assert!(achieved_epsilon.is_finite() && *achieved_epsilon > 0.0);
    // The certification is honest: a 128-round estimate cannot claim the
    // configured epsilon.
    assert!(*achieved_epsilon > idx.config().epsilon);
    // And it is *correct*: the degraded answer lies within the certified
    // half-width of the exact sweep (deterministic given the build seed).
    for (i, (a, e)) in pi.iter().zip(&exact).enumerate() {
        assert!(
            (a - e).abs() <= *achieved_epsilon,
            "i={i}: degraded={a} exact={e} certified={achieved_epsilon}"
        );
    }

    // The effective budget is the min of the two caps.
    let tight = QueryBudget {
        max_work: 10_000,
        deadline_proxy: 64,
    };
    assert_eq!(tight.effective(), 64);
    let o = idx.quantify_within(q, tight).unwrap();
    assert!(o.is_degraded() && o.work() <= 64);

    // Not even one round: typed exhaustion, not a wrong answer.
    assert!(matches!(
        idx.quantify_within(q, QueryBudget::with_work(0)),
        Err(UnnError::BudgetExhausted { .. })
    ));

    // Batched budgeted queries: deterministic across thread counts.
    let mut rng = SmallRng::seed_from_u64(907);
    let qs: Vec<Point> = (0..40)
        .map(|_| Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0)))
        .collect();
    let reference = idx.quantify_guarded_batch_with(&qs, budget, &BatchOptions::with_threads(1));
    for threads in [2, 8] {
        let got =
            idx.quantify_guarded_batch_with(&qs, budget, &BatchOptions::with_threads(threads));
        assert_eq!(got, reference, "threads = {threads}");
    }
}

// ---------------------------------------------------------------------------
// Dynamic layer: hostile samplers arriving through insert churn.
// ---------------------------------------------------------------------------

#[test]
fn dynamic_insert_faults_never_break_the_engine() {
    use unn::{DynamicPnnConfig, DynamicPnnIndex};

    let config = DynamicPnnConfig {
        mc_rounds: 128,
        ..DynamicPnnConfig::default()
    };
    let mut idx = DynamicPnnIndex::with_config(config.clone()).unwrap();
    let mut oracle = DynamicPnnIndex::with_config(config).unwrap();
    let mut live = Vec::new();
    for p in clean_disks(12, 910) {
        let id = idx.insert(p.clone());
        assert_eq!(oracle.insert(p), id);
        live.push(id);
    }

    // A sampler that panics during the block build: try_insert contains it
    // as a typed error and the index is exactly as it was.
    let hostile = || {
        Uncertain::Chaos(ChaosDistribution::new(
            Uncertain::uniform_disk(Point::new(1.0, -1.0), 1.0),
            ChaosMode::PanicOnSample(3),
        ))
    };
    let len_before = idx.len();
    match idx.try_insert(hostile(), ValidationPolicy::Strict) {
        Err(UnnError::QueryPanicked { message }) => {
            assert!(message.contains("chaos"), "unexpected payload: {message}")
        }
        other => panic!("expected QueryPanicked, got {other:?}"),
    }
    assert_eq!(idx.len(), len_before, "failed insert must not burn a slot");

    // The raw (panicking) insert path: the panic escapes to the caller by
    // design, but the build-before-mutate ordering keeps the engine
    // consistent — the id is not burned and the live set is unchanged.
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        idx.insert(hostile());
    }));
    assert!(panicked.is_err(), "raw insert propagates the panic");
    assert_eq!(idx.len(), len_before);

    // Post-fault churn oracle pass: the survivor keeps matching a twin that
    // never saw the hostile point, through further inserts and removes.
    for p in clean_disks(6, 911) {
        let id = idx.insert(p.clone());
        assert_eq!(oracle.insert(p), id, "id streams must stay in lockstep");
        live.push(id);
    }
    for &victim in &[live[1], live[8], live[14]] {
        assert!(idx.remove(victim));
        assert!(oracle.remove(victim));
    }
    let (snap, osnap) = (idx.snapshot(), oracle.snapshot());
    let mut rng = SmallRng::seed_from_u64(912);
    for _ in 0..24 {
        let q = Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0));
        assert_eq!(snap.nn_nonzero(q), osnap.nn_nonzero(q));
        assert_eq!(snap.quantify(q), osnap.quantify(q));
    }

    // Repair-policy inserts on degenerate-but-fixable input still work
    // after the faults: the dynamic boundary matches the static builder's.
    let fixable = Uncertain::Discrete(
        DiscreteDistribution::repair(
            vec![Point::new(2.0, 2.0), Point::new(f64::NAN, 0.0)],
            vec![1.0, 1.0],
        )
        .expect("one finite location survives repair"),
    );
    let id = idx
        .try_insert(fixable.clone(), ValidationPolicy::Repair)
        .expect("repairable point must insert");
    assert!(idx.contains(id));
    let oid = oracle
        .try_insert(fixable, ValidationPolicy::Repair)
        .expect("oracle twin");
    assert_eq!(id, oid);
    let q = Point::new(2.0, 2.0);
    assert_eq!(
        idx.snapshot().nn_nonzero(q),
        oracle.snapshot().nn_nonzero(q)
    );
}
