//! Cross-batch admission feedback: the token bucket that makes work
//! capacity a *rate*, not a per-batch constant.
//!
//! Contracts under test, per DESIGN.md §9:
//!
//! * spent work must be earned back by completed answers — an expensive
//!   batch starves the next until completions refill the bucket;
//! * shed replies earn nothing (no runaway credit from refusals);
//! * the clock-driven trickle refills deterministically under an injected
//!   [`VirtualClock`], and the bucket saturates at its capacity;
//! * the whole mechanism is a pure function of the request stream and the
//!   injected clock: two identical runs produce identical replies and
//!   identical bucket levels.

use std::sync::Arc;

use unn::geom::Point;
use unn::serve::{
    AdmissionConfig, DispatchConfig, Dispatcher, FeedbackConfig, Outcome, Request, ServeConfig,
    ShardPolicy, ShardSet, ShardSetSnapshot, ShedReason,
};
use unn::Uncertain;
use unn_observe::{NullClock, VirtualClock};

fn snapshot() -> ShardSetSnapshot {
    let mut set = ShardSet::new(2, ShardPolicy::Hash, ServeConfig::default())
        .unwrap_or_else(|e| panic!("{e}"));
    for i in 0..12 {
        set.insert(Uncertain::uniform_disk(
            Point::new((i % 4) as f64 * 2.0, (i / 4) as f64 * 2.0),
            0.4,
        ));
    }
    set.snapshot()
}

fn config(feedback: FeedbackConfig) -> DispatchConfig {
    DispatchConfig {
        threads: Some(1),
        admission: AdmissionConfig {
            nn_cost: 8,
            feedback: Some(feedback),
            ..AdmissionConfig::default()
        },
        ..DispatchConfig::default()
    }
}

fn nn_batch(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| Request::NnNonzero(Point::new(0.7 * i as f64, 0.3)))
        .collect()
}

fn shed_count(replies: &[unn::serve::Reply]) -> usize {
    replies
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                Outcome::Shed {
                    reason: ShedReason::CapacityExhausted
                }
            )
        })
        .count()
}

#[test]
fn completions_earn_back_exactly_what_sustainable_load_spends() {
    // 24 initial tokens, 8 per NN answer: a 3-request batch spends 24 and
    // earns 24 back — the load is sustainable forever.
    let snap = snapshot();
    let fb = FeedbackConfig {
        bucket_capacity: 64,
        initial_tokens: 24,
        tokens_per_completion: 8,
        tokens_per_sec: 0,
    };
    let mut d = Dispatcher::for_snapshot(&snap, config(fb), Arc::new(NullClock))
        .unwrap_or_else(|e| panic!("{e}"));
    for batch in 0..5 {
        let replies = d.serve(&nn_batch(3));
        assert_eq!(shed_count(&replies), 0, "batch {batch} should fit");
        assert_eq!(
            d.feedback_tokens(),
            Some(0),
            "batch {batch} drains the bucket"
        );
    }
}

#[test]
fn an_expensive_batch_starves_the_next_until_completions_catch_up() {
    // Earning only 4 per completion against a cost of 8, the second batch
    // can afford a single request: batch 1 spends 24, earns back 12.
    let snap = snapshot();
    let fb = FeedbackConfig {
        bucket_capacity: 64,
        initial_tokens: 24,
        tokens_per_completion: 4,
        tokens_per_sec: 0,
    };
    let mut d = Dispatcher::for_snapshot(&snap, config(fb), Arc::new(NullClock))
        .unwrap_or_else(|e| panic!("{e}"));
    let first = d.serve(&nn_batch(3));
    assert_eq!(shed_count(&first), 0);
    let second = d.serve(&nn_batch(3));
    assert_eq!(
        shed_count(&second),
        2,
        "only one request's worth of tokens earned back"
    );
    // The shed requests earned nothing: the third batch still affords just
    // the one answer the second batch completed (4 tokens banked + 4 new
    // is still under one 8-token admission... exactly one).
    let third = d.serve(&nn_batch(3));
    assert_eq!(shed_count(&third), 2, "shed replies must not earn tokens");
}

#[test]
fn trickle_refill_follows_the_injected_clock_and_saturates() {
    // No completion credit at all: tokens only come back with time.
    let snap = snapshot();
    let fb = FeedbackConfig {
        bucket_capacity: 32,
        initial_tokens: 24,
        tokens_per_completion: 0,
        tokens_per_sec: 8,
    };
    let clock = Arc::new(VirtualClock::new());
    let mut d = Dispatcher::for_snapshot(&snap, config(fb), clock.clone())
        .unwrap_or_else(|e| panic!("{e}"));

    // Batch 1 drains the bucket; batch 2, at the same instant, is starved.
    assert_eq!(shed_count(&d.serve(&nn_batch(3))), 0);
    assert_eq!(d.feedback_tokens(), Some(0));
    assert_eq!(shed_count(&d.serve(&nn_batch(3))), 3);

    // One second buys 8 tokens: exactly one admission.
    clock.advance(1_000_000_000);
    assert_eq!(shed_count(&d.serve(&nn_batch(3))), 2);

    // A very long idle period saturates at capacity (32 = 4 admissions),
    // not at elapsed × rate.
    clock.advance(3_600 * 1_000_000_000);
    assert_eq!(shed_count(&d.serve(&nn_batch(6))), 2);
}

#[test]
fn feedback_is_deterministic_across_identical_runs() {
    let snap = snapshot();
    let fb = FeedbackConfig {
        bucket_capacity: 48,
        initial_tokens: 40,
        tokens_per_completion: 8,
        tokens_per_sec: 16,
    };
    let run = || {
        let clock = Arc::new(VirtualClock::new());
        let mut d = Dispatcher::for_snapshot(&snap, config(fb), clock.clone())
            .unwrap_or_else(|e| panic!("{e}"));
        let mut all = Vec::new();
        for step in 0..6 {
            all.extend(d.serve(&nn_batch(2 + step % 3)));
            clock.advance(250_000_000 * (step as u64 + 1));
        }
        (all, d.feedback_tokens())
    };
    let (a, tokens_a) = run();
    let (b, tokens_b) = run();
    assert_eq!(a, b, "replies must be bit-identical across identical runs");
    assert_eq!(tokens_a, tokens_b);
    assert!(tokens_a.is_some());
}

#[test]
fn without_feedback_capacity_is_per_batch_only() {
    // The control: the same load with `feedback: None` never sheds, and
    // the bucket level reads back as absent.
    let snap = snapshot();
    let cfg = DispatchConfig {
        threads: Some(1),
        ..DispatchConfig::default()
    };
    let mut d =
        Dispatcher::for_snapshot(&snap, cfg, Arc::new(NullClock)).unwrap_or_else(|e| panic!("{e}"));
    for _ in 0..4 {
        assert_eq!(shed_count(&d.serve(&nn_batch(6))), 0);
    }
    assert_eq!(d.feedback_tokens(), None);
}
