//! Observe-gated transport counters: only built with `--features observe`,
//! where the net hooks compile to real atomics. A single test owns the
//! process-global counters (this file has exactly one `#[test]`, so no
//! parallel test can race the reset).

#![cfg(feature = "observe")]

use std::sync::{Arc, Mutex};

use unn::geom::Point;
use unn::net::{
    ChaosDuplex, ClientConfig, Duplex, FrameFault, LoopbackDuplex, NetClient, NetError,
    ServerConfig,
};
use unn::serve::{DispatchConfig, Dispatcher, Request, ServeConfig, ShardPolicy, ShardSet};
use unn::Uncertain;
use unn_observe::{net_counters, net_counters_reset, MetricsShard, NullClock};

#[test]
fn net_counters_track_transport_traffic_and_surface_in_renders() {
    net_counters_reset();
    assert_eq!(net_counters(), unn_observe::NetCounters::default());

    let mut set = ShardSet::new(2, ShardPolicy::Hash, ServeConfig::default())
        .unwrap_or_else(|e| panic!("{e}"));
    for i in 0..8 {
        set.insert(Uncertain::uniform_disk(
            Point::new(i as f64 * 1.5, 0.5),
            0.4,
        ));
    }
    let d = Arc::new(Mutex::new(
        Dispatcher::for_snapshot(
            &set.snapshot(),
            DispatchConfig::default(),
            Arc::new(NullClock),
        )
        .unwrap_or_else(|e| panic!("{e}")),
    ));

    // Clean traffic: handshake + one batch = 2 frames out, 2 in.
    let mut client = NetClient::new(
        LoopbackDuplex::connector(Arc::clone(&d), ServerConfig::default()),
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    let reqs = [
        Request::NnNonzero(Point::new(1.0, 0.5)),
        Request::Quantify(Point::new(2.0, 0.5)),
    ];
    client.serve(&reqs).unwrap_or_else(|e| panic!("{e}"));
    let after_clean = net_counters();
    // The server also counts its own frames (2 in, 2 out), so process-wide
    // totals are 4/4.
    assert_eq!(after_clean.frames_out, 4);
    assert_eq!(after_clean.frames_in, 4);
    assert!(after_clean.bytes_out > 0 && after_clean.bytes_in > 0);
    assert_eq!(after_clean.decode_errors, 0);
    assert_eq!(after_clean.reconnects, 0);

    // A dropped request forces a timeout, a reconnect, and a retry.
    let drop_then_clean = {
        let d = Arc::clone(&d);
        let mut scripts = vec![vec![FrameFault::Deliver, FrameFault::Drop], Vec::new()].into_iter();
        move || {
            let script = scripts.next().unwrap_or_default();
            Ok(Box::new(ChaosDuplex::new(
                LoopbackDuplex::new(Arc::clone(&d), ServerConfig::default()),
                script,
            )) as Box<dyn Duplex>)
        }
    };
    let mut flaky = NetClient::new(
        drop_then_clean,
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    flaky.serve(&reqs).unwrap_or_else(|e| panic!("{e}"));
    let after_flaky = net_counters();
    assert_eq!(after_flaky.reconnects, 1);

    // A corrupted request frame registers a decode error server-side.
    let corrupt = {
        let d = Arc::clone(&d);
        let mut scripts = vec![
            vec![FrameFault::Deliver, FrameFault::CorruptBit(32)],
            Vec::new(),
        ]
        .into_iter();
        move || {
            let script = scripts.next().unwrap_or_default();
            Ok(Box::new(ChaosDuplex::new(
                LoopbackDuplex::new(Arc::clone(&d), ServerConfig::default()),
                script,
            )) as Box<dyn Duplex>)
        }
    };
    let mut corrupted = NetClient::new(corrupt, ClientConfig::default(), Arc::new(NullClock));
    corrupted.serve(&reqs).unwrap_or_else(|e| panic!("{e}"));
    let after_corrupt = net_counters();
    assert!(
        after_corrupt.decode_errors >= 1,
        "bit-flipped frame must count a decode error, got {after_corrupt:?}"
    );

    // A future-version peer registers a version mismatch. The server-side
    // counter fires when *it* rejects a hello, so we impersonate a v+1 peer
    // at the connection level (the typed client always speaks v1).
    let mut conn = unn::net::Connection::new(Arc::clone(&d), ServerConfig::default());
    let mut out = Vec::new();
    let hello = unn::wire::encode_frame(&unn::wire::Frame::Hello(unn::wire::Hello {
        version: unn::wire::WIRE_VERSION + 1,
        expected_epoch: unn::wire::ANY_EPOCH,
    }));
    conn.feed(&unn::wire::frame_bytes(&hello), &mut out);
    let after_mismatch = net_counters();
    assert_eq!(after_mismatch.version_mismatches, 1);

    // The totals flow into the metrics renders.
    let mut shard = MetricsShard::default();
    shard.absorb_net(&after_mismatch);
    let snap = unn_observe::MetricsSnapshot { shard };
    let text = snap.render_text();
    assert!(
        text.contains("net: frames"),
        "text render lacks net line:\n{text}"
    );
    // One reconnect each from the flaky and the corrupted client.
    assert!(
        text.contains("reconnects 2"),
        "text render lacks reconnects:\n{text}"
    );
    let json = snap.render_json();
    for key in [
        "\"net_frames_in\"",
        "\"net_frames_out\"",
        "\"net_bytes_in\"",
        "\"net_bytes_out\"",
        "\"net_decode_errors\"",
        "\"net_version_mismatches\"",
        "\"net_reconnects\"",
    ] {
        assert!(json.contains(key), "json render lacks {key}:\n{json}");
    }
    assert!(json.contains("\"net_version_mismatches\": 1"), "{json}");

    // Reset drains everything.
    net_counters_reset();
    assert_eq!(net_counters(), unn_observe::NetCounters::default());

    // Silence the unused-error-type lint path: a NetError is what the
    // chaos scripts would surface on permanent failure.
    let _: fn(&NetError) -> bool = NetError::retryable;
}
