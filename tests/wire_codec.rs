//! Codec totality suite for `unn::wire`.
//!
//! Contracts under test, per DESIGN.md §10:
//!
//! * round trip: `decode(encode(x)) == x` for every frame type, including
//!   NaN and signed-zero `f64` payloads (bit-pattern transport);
//! * totality: the decoder never panics on arbitrary bytes, truncations at
//!   every boundary, or single-bit corruptions — every rejection is a
//!   typed `WireError`;
//! * framing: length-prefix splitting reassembles split/coalesced streams
//!   and rejects unrecoverable prefixes.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use unn::geom::Point;
use unn::index::QuantifyMethod;
use unn::serve::{Outcome, Reply, Request, ShedReason};
use unn::wire::{
    decode_frame, decode_quantify_outcome, decode_unn_error, encode_frame, encode_quantify_outcome,
    encode_unn_error, frame_bytes, frame_split, ErrorCode, ErrorFrame, Frame, Hello, HelloAck,
    ReplyBatch, RequestBatch, ANY_EPOCH, WIRE_VERSION,
};
use unn::{QuantifyOutcome, UnnError};

fn random_f64(rng: &mut SmallRng) -> f64 {
    // Cover the full bit space: normals, subnormals, infinities, NaNs,
    // signed zeros — the codec must carry every pattern exactly.
    f64::from_bits(rng.random_range(0..=u64::MAX))
}

fn random_point(rng: &mut SmallRng) -> Point {
    Point {
        x: random_f64(rng),
        y: random_f64(rng),
    }
}

fn random_request(rng: &mut SmallRng) -> Request {
    if rng.random_bool(0.5) {
        Request::NnNonzero(random_point(rng))
    } else {
        Request::Quantify(random_point(rng))
    }
}

fn random_vec_u64(rng: &mut SmallRng, max_len: usize) -> Vec<u64> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| rng.random_range(0..=u64::MAX)).collect()
}

fn random_vec_f64(rng: &mut SmallRng, max_len: usize) -> Vec<f64> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| random_f64(rng)).collect()
}

fn random_outcome(rng: &mut SmallRng) -> Outcome {
    match rng.random_range(0..5u32) {
        0 => Outcome::Nonzero {
            ids: random_vec_u64(rng, 8),
        },
        1 => Outcome::Exact {
            pi: random_vec_f64(rng, 8),
        },
        2 => Outcome::Adaptive {
            pi: random_vec_f64(rng, 8),
            achieved_epsilon: random_f64(rng),
            rounds_used: rng.random_range(0..1_000_000usize),
        },
        3 => Outcome::Capped {
            pi: random_vec_f64(rng, 8),
            achieved_epsilon: random_f64(rng),
            rounds_used: rng.random_range(0..1_000_000usize),
        },
        _ => Outcome::Shed {
            reason: match rng.random_range(0..4u32) {
                0 => ShedReason::CapacityExhausted,
                1 => ShedReason::InvalidQuery,
                2 => ShedReason::NoCoverage,
                _ => ShedReason::DeadlineExceeded,
            },
        },
    }
}

fn random_reply(rng: &mut SmallRng) -> Reply {
    Reply {
        outcome: random_outcome(rng),
        layout: random_vec_u64(rng, 8),
        failed_shards: (0..rng.random_range(0..4usize))
            .map(|_| rng.random_range(0..64usize))
            .collect(),
        covered: rng.random_range(0..1_000usize),
        total_live: rng.random_range(0..1_000usize),
        retries: rng.random_range(0..100u64),
        elapsed_nanos: rng.random_range(0..=u64::MAX),
        degraded: rng.random_bool(0.5),
    }
}

fn random_frame(rng: &mut SmallRng) -> Frame {
    match rng.random_range(0..5u32) {
        0 => Frame::Hello(Hello {
            version: WIRE_VERSION,
            expected_epoch: if rng.random_bool(0.3) {
                ANY_EPOCH
            } else {
                rng.random_range(0..1_000)
            },
        }),
        1 => Frame::HelloAck(HelloAck {
            version: rng.random_range(0..=u16::MAX),
            index_epoch: rng.random_range(0..=u64::MAX),
            total_live: rng.random_range(0..=u64::MAX),
            mc_rounds: rng.random_range(0..=u64::MAX),
        }),
        2 => Frame::RequestBatch(RequestBatch {
            budget_nanos: rng.random_range(0..=u64::MAX),
            requests: (0..rng.random_range(0..6usize))
                .map(|_| random_request(rng))
                .collect(),
        }),
        3 => Frame::ReplyBatch(ReplyBatch {
            replies: (0..rng.random_range(0..4usize))
                .map(|_| random_reply(rng))
                .collect(),
        }),
        _ => Frame::Error(ErrorFrame {
            code: match rng.random_range(0..4u32) {
                0 => ErrorCode::VersionMismatch,
                1 => ErrorCode::EpochMismatch,
                2 => ErrorCode::Malformed,
                _ => ErrorCode::Internal,
            },
            ours: rng.random_range(0..=u64::MAX),
            theirs: rng.random_range(0..=u64::MAX),
            detail: "protocol error: спутник λ=0.5 🚀"
                .chars()
                .take(rng.random_range(0..20))
                .collect(),
        }),
    }
}

/// Frames may hold NaN payloads, where `==` is false even for identical
/// values; compare re-encodings instead (bit-exact by construction).
fn assert_same_frame(a: &Frame, b: &Frame) {
    assert_eq!(encode_frame(a), encode_frame(b), "{a:?} != {b:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every session frame survives encode → decode bit-exactly, full
    /// `f64` bit space included.
    #[test]
    fn session_frames_round_trip(seed in 0u64..1_000_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let frame = random_frame(&mut rng);
        let body = encode_frame(&frame);
        let back = decode_frame(&body);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back.err());
        if let Ok(back) = back {
            assert_same_frame(&frame, &back);
        }
        // And through the framing layer, split at a random boundary.
        let framed = frame_bytes(&body);
        let cut = rng.random_range(0..framed.len());
        prop_assert!(frame_split(&framed[..cut]).is_ok_and(|r| r.is_none()));
        let whole = frame_split(&framed);
        prop_assert!(whole.is_ok_and(|r| matches!(r, Some((b, used)) if b == &body[..] && used == framed.len())));
    }

    /// Truncating an encoded frame at *any* boundary yields a typed error,
    /// never a panic.
    #[test]
    fn truncation_at_every_boundary_is_rejected(seed in 0u64..1_000_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let body = encode_frame(&random_frame(&mut rng));
        for cut in 0..body.len() {
            prop_assert!(decode_frame(&body[..cut]).is_err(), "cut at {} decoded", cut);
        }
    }

    /// Arbitrary random bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic(seed in 0u64..1_000_000_000, len in 0usize..256) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random_range(0..=255u32) as u8).collect();
        let _ = decode_frame(&bytes);
        let _ = decode_quantify_outcome(&bytes);
        let _ = decode_unn_error(&bytes);
        let _ = frame_split(&bytes);
    }

    /// A single flipped bit is either detected (typed error) or decodes to
    /// some other well-formed frame — never a panic, never trailing bytes.
    #[test]
    fn bit_flips_never_panic(seed in 0u64..1_000_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let body = encode_frame(&random_frame(&mut rng));
        let bit = rng.random_range(0..body.len() * 8);
        let mut corrupt = body.clone();
        corrupt[bit / 8] ^= 1 << (bit % 8);
        if let Ok(frame) = decode_frame(&corrupt) {
            // Corruption can land in a payload byte and still decode; the
            // re-encoding must then reproduce the corrupt body exactly.
            prop_assert_eq!(encode_frame(&frame), corrupt);
        }
    }

    /// Façade value frames (`QuantifyOutcome`, `UnnError`) round-trip and
    /// reject truncations.
    #[test]
    fn facade_frames_round_trip(seed in 0u64..1_000_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let outcome = if rng.random_bool(0.5) {
            QuantifyOutcome::Exact {
                pi: random_vec_f64(&mut rng, 8),
                method: match rng.random_range(0..4u32) {
                    0 => QuantifyMethod::Spiral,
                    1 => QuantifyMethod::MonteCarlo { achieved_epsilon: random_f64(&mut rng) },
                    2 => QuantifyMethod::ExactSweep,
                    _ => QuantifyMethod::NumericIntegration,
                },
                work: rng.random_range(0..=u64::MAX),
            }
        } else {
            QuantifyOutcome::Degraded {
                pi: random_vec_f64(&mut rng, 8),
                achieved_epsilon: random_f64(&mut rng),
                rounds_used: rng.random_range(0..1_000_000usize),
                work: rng.random_range(0..=u64::MAX),
            }
        };
        let body = encode_quantify_outcome(&outcome);
        let back = decode_quantify_outcome(&body);
        prop_assert!(back.is_ok());
        if let Ok(back) = back {
            prop_assert_eq!(encode_quantify_outcome(&back), body.clone());
        }
        for cut in 0..body.len() {
            prop_assert!(decode_quantify_outcome(&body[..cut]).is_err());
        }

        let err = match rng.random_range(0..5u32) {
            0 => UnnError::InvalidDistribution {
                index: if rng.random_bool(0.5) { Some(rng.random_range(0..1_000usize)) } else { None },
                reason: "bad support".into(),
            },
            1 => UnnError::InvalidConfig { reason: "ε out of range".into() },
            2 => UnnError::DegenerateGeometry { reason: "collinear".into() },
            3 => UnnError::BudgetExhausted {
                budget: rng.random_range(0..=u64::MAX),
                required: rng.random_range(0..=u64::MAX),
            },
            _ => UnnError::QueryPanicked { message: "caught".into() },
        };
        let body = encode_unn_error(&err);
        let back = decode_unn_error(&body);
        prop_assert!(back.is_ok());
        if let Ok(back) = back {
            prop_assert_eq!(back, err);
        }
        for cut in 0..body.len() {
            prop_assert!(decode_unn_error(&body[..cut]).is_err());
        }
    }
}

#[test]
fn hostile_length_prefixes_are_rejected_without_allocation() {
    // A 4 GiB frame claim must be rejected from the 4-byte prefix alone.
    let huge = u32::MAX.to_le_bytes();
    assert!(frame_split(&huge).is_err());
    // A zero-length frame is equally unrecoverable.
    assert!(frame_split(&[0, 0, 0, 0]).is_err());
    // An in-bounds claim with missing bytes just waits for more.
    let mut partial = 100u32.to_le_bytes().to_vec();
    partial.push(7);
    assert!(matches!(frame_split(&partial), Ok(None)));
}

#[test]
fn version_is_checked_before_anything_else() {
    // A Hello from a hypothetical v2 peer still *decodes* (the handshake
    // layer rejects it); only the magic is enforced by the codec.
    let body = encode_frame(&Frame::Hello(Hello {
        version: WIRE_VERSION + 1,
        expected_epoch: ANY_EPOCH,
    }));
    assert!(decode_frame(&body).is_ok());
    // But corrupting the magic is a codec-level rejection.
    let mut bad_magic = body;
    bad_magic[1] ^= 0xff;
    assert!(decode_frame(&bad_magic).is_err());
}
