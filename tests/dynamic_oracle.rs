//! Differential oracle for the dynamic index: after an arbitrary
//! interleaving of inserts and removes, a [`DynamicPnnIndex`] snapshot must
//! agree with a *fresh static* [`PnnIndex`] built from the surviving live
//! set — `NN≠0` bit-for-bit, Monte-Carlo quantification within the *sum*
//! of the two paths' honest advertised accuracies (triangle inequality
//! through the true distribution, as in `tests/oracle.rs`), and the exact
//! sweep bit-for-bit on all-discrete live sets.
//!
//! Everything is deterministic: corpora, churn sequences, and queries come
//! from proptest/fixed seeds (via the shared `unn-testkit` generators),
//! and both indexes freeze their Monte-Carlo randomness at build time.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::distr::DiscreteDistribution;
use unn::dynamic::{DynamicPnnConfig, DynamicPnnIndex, PointId};
use unn::geom::Point;
use unn::{PnnConfig, PnnIndex, Uncertain};
use unn_testkit::{churn, corpus, max_abs_diff};

const DELTA: f64 = 0.01;

fn dynamic_config() -> DynamicPnnConfig {
    DynamicPnnConfig {
        base: PnnConfig {
            epsilon: 0.05,
            delta: DELTA,
            ..PnnConfig::default()
        },
        // Small enough to keep churned rebuilds cheap; the honest bound
        // the snapshot advertises for this s is what the test checks.
        mc_rounds: 384,
        ..DynamicPnnConfig::default()
    }
}

fn static_config() -> PnnConfig {
    PnnConfig {
        epsilon: 0.05,
        delta: DELTA,
        max_mc_rounds: 1024,
        ..PnnConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The tentpole equivalence contract: for any churn history, the
    /// snapshot's answers depend only on the surviving live set.
    #[test]
    fn churned_dynamic_matches_fresh_static(
        initial in 3usize..10,
        ops in proptest::collection::vec((proptest::bool::ANY, 0u64..1_000_000), 0..24),
        seed in 0u64..10_000,
    ) {
        let (index, mirror) = churn::churn(initial, &ops, seed, dynamic_config());
        prop_assert_eq!(index.len(), mirror.len());
        let snap = index.snapshot();
        let live_ids: Vec<PointId> = mirror.keys().copied().collect();
        prop_assert_eq!(snap.live_ids(), &live_ids[..]);

        let static_index = PnnIndex::build(mirror.values().cloned().collect(), static_config());
        let qs = corpus::query_points(6, seed ^ 0xD15C, 25.0);
        for &q in &qs {
            // NN!=0 must be bit-identical: same floats, same strict
            // comparisons, only composed across blocks.
            let dynamic_ids = snap.nn_nonzero(q);
            let static_ids: Vec<PointId> = static_index
                .nn_nonzero(q)
                .into_iter()
                .map(|i| live_ids[i])
                .collect();
            prop_assert_eq!(&dynamic_ids, &static_ids, "NN!=0 diverged at {:?}", q);

            if mirror.is_empty() {
                prop_assert!(snap.quantify(q).0.is_empty());
                continue;
            }
            // Monte-Carlo estimates use different round instantiations
            // (id-keyed vs build-order streams), so they agree through the
            // true distribution: within the sum of the honest bounds.
            let (dyn_pi, _) = snap.quantify(q);
            let (stat_pi, _) = static_index.quantify(q);
            let bound = snap.achieved_epsilon() + static_index.mc_achieved_epsilon();
            let d = max_abs_diff(&dyn_pi, &stat_pi);
            prop_assert!(
                d <= bound,
                "MC estimates {} apart > summed honest bounds {} at {:?}",
                d, bound, q
            );
            let sum: f64 = dyn_pi.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "pi sums to {}", sum);
        }
    }

    /// Tombstoned points must vanish from every answer immediately —
    /// before any merge or compaction reclaims their storage.
    #[test]
    fn removed_points_never_appear(
        initial in 4usize..10,
        victims in proptest::collection::vec(0u64..1_000_000, 1..3),
        seed in 0u64..10_000,
    ) {
        let ops: Vec<(bool, u64)> = victims.iter().map(|&v| (false, v)).collect();
        let (index, mirror) = churn::churn(initial, &ops, seed, dynamic_config());
        let snap = index.snapshot();
        for &q in &corpus::query_points(4, seed ^ 0xDEAD, 25.0) {
            for id in snap.nn_nonzero(q) {
                prop_assert!(mirror.contains_key(&id), "dead id {} answered", id);
            }
            let (pi, _) = snap.quantify(q);
            prop_assert_eq!(pi.len(), mirror.len());
        }
    }
}

/// All-discrete live sets expose the exact sweep through the dynamic
/// facade; it must be bit-identical to the static sweep (same points, same
/// live-id order), and the adaptive certificate must honestly bound the
/// true error against it.
#[test]
fn discrete_exact_path_is_bit_identical_and_adaptive_honest() {
    let mut rng = SmallRng::seed_from_u64(77);
    let mut index = DynamicPnnIndex::with_config(dynamic_config())
        .unwrap_or_else(|e| panic!("config rejected: {e}"));
    let mut mirror = BTreeMap::new();
    for _ in 0..10 {
        let c = Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0));
        let pts: Vec<Point> = (0..4)
            .map(|_| {
                Point::new(
                    c.x + rng.random_range(-3.0..3.0),
                    c.y + rng.random_range(-3.0..3.0),
                )
            })
            .collect();
        let p = Uncertain::Discrete(
            DiscreteDistribution::uniform(pts).unwrap_or_else(|e| panic!("corpus: {e}")),
        );
        let id = index.insert(p.clone());
        mirror.insert(id, p);
    }
    for victim in [2u64, 6] {
        assert!(index.remove(victim));
        mirror.remove(&victim);
    }
    let snap = index.snapshot();
    let static_index = PnnIndex::build(mirror.values().cloned().collect(), static_config());
    for &q in &corpus::query_points(8, 78, 25.0) {
        let (dyn_exact, _) = snap.quantify_exact(q);
        let (stat_exact, _) = static_index.quantify_exact(q);
        assert_eq!(
            dyn_exact, stat_exact,
            "exact sweeps must be bit-identical at {q:?}"
        );
        let a = snap.quantify_adaptive(q, 0.05, DELTA);
        assert!(a.rounds_used >= 1 && a.rounds_used <= snap.mc_rounds());
        let d = max_abs_diff(&a.pi, &dyn_exact);
        assert!(
            d <= a.half_width,
            "true error {d} > certified half-width {} at {q:?}",
            a.half_width
        );
        let (mc_pi, _) = snap.quantify(q);
        let d = max_abs_diff(&mc_pi, &dyn_exact);
        assert!(
            d <= snap.achieved_epsilon(),
            "MC error {d} > advertised {} at {q:?}",
            snap.achieved_epsilon()
        );
    }
}
