//! Determinism contract of the batch query engine (`unn::batch`): every
//! batch API returns results bit-identical to the sequential loop, for
//! every thread count and for any query order.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};
use unn::batch::{query_stream_seed, BatchOptions};
use unn::distr::{DiscreteDistribution, TruncatedGaussian};
use unn::geom::Point;
use unn::observe::{NullClock, PipelineMetrics};
use unn::{ChaosDistribution, ChaosMode, PnnIndex, Uncertain, UnnError};

fn discrete_points(n: usize, k: usize, seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.random_range(-25.0..25.0);
            let cy: f64 = rng.random_range(-25.0..25.0);
            Uncertain::Discrete(
                DiscreteDistribution::uniform(
                    (0..k)
                        .map(|_| {
                            Point::new(
                                cx + rng.random_range(-3.0..3.0),
                                cy + rng.random_range(-3.0..3.0),
                            )
                        })
                        .collect(),
                )
                .unwrap(),
            )
        })
        .collect()
}

fn mixed_points(n: usize, seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let c = Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0));
            match i % 3 {
                0 => Uncertain::uniform_disk(c, rng.random_range(0.5..2.5)),
                1 => Uncertain::Gaussian(TruncatedGaussian::with_sigmas(c, 0.7, 3.0)),
                _ => Uncertain::Discrete(
                    DiscreteDistribution::uniform(vec![
                        Point::new(c.x - 1.0, c.y),
                        Point::new(c.x + 1.0, c.y),
                    ])
                    .unwrap(),
                ),
            }
        })
        .collect()
}

fn queries(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0)))
        .collect()
}

fn shuffle<T: Clone>(items: &[T], seed: u64) -> (Vec<T>, Vec<usize>) {
    let mut perm: Vec<usize> = (0..items.len()).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..perm.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    (perm.iter().map(|&i| items[i].clone()).collect(), perm)
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn nn_nonzero_batch_bit_identical_across_thread_counts() {
    for points in [discrete_points(20, 3, 500), mixed_points(20, 501)] {
        let idx = PnnIndex::new(points);
        let qs = queries(256, 502);
        let seq: Vec<Vec<usize>> = qs.iter().map(|&q| idx.nn_nonzero(q)).collect();
        for t in THREAD_COUNTS {
            let batch = idx.nn_nonzero_batch_with(&qs, &BatchOptions::with_threads(t));
            assert_eq!(batch, seq, "threads = {t}");
        }
    }
}

#[test]
fn quantify_batch_bit_identical_across_thread_counts() {
    for points in [discrete_points(15, 3, 503), mixed_points(15, 504)] {
        let idx = PnnIndex::new(points);
        let qs = queries(96, 505);
        let (seq, seq_m): (Vec<Vec<f64>>, _) = {
            let per: Vec<_> = qs.iter().map(|&q| idx.quantify(q)).collect();
            let m = per[0].1;
            (per.into_iter().map(|(pi, _)| pi).collect(), m)
        };
        for t in THREAD_COUNTS {
            let (batch, m) = idx.quantify_batch_with(&qs, &BatchOptions::with_threads(t));
            assert_eq!(m, seq_m);
            assert_eq!(batch, seq, "threads = {t}");
        }
    }
}

#[test]
fn quantify_exact_batch_bit_identical_across_thread_counts() {
    let idx = PnnIndex::new(discrete_points(12, 4, 506));
    let qs = queries(128, 507);
    let seq: Vec<Vec<f64>> = qs.iter().map(|&q| idx.quantify_exact(q).0).collect();
    for t in THREAD_COUNTS {
        let (batch, _) = idx.quantify_exact_batch_with(&qs, &BatchOptions::with_threads(t));
        assert_eq!(batch, seq, "threads = {t}");
    }
}

#[test]
fn expected_nn_batch_bit_identical_across_thread_counts() {
    let idx = PnnIndex::new(mixed_points(25, 508));
    let qs = queries(256, 509);
    let seq: Vec<_> = qs.iter().map(|&q| idx.expected_nn(q)).collect();
    for t in THREAD_COUNTS {
        let batch = idx.expected_nn_batch_with(&qs, &BatchOptions::with_threads(t));
        assert_eq!(batch, seq, "threads = {t}");
    }
}

#[test]
fn quantify_fresh_batch_bit_identical_across_thread_counts() {
    let idx = PnnIndex::new(discrete_points(10, 2, 510));
    let qs = queries(64, 511);
    // Sequential reference: the documented per-index stream derivation.
    let seq: Vec<Vec<f64>> = qs
        .iter()
        .enumerate()
        .map(|(i, &q)| {
            let mut rng = SmallRng::seed_from_u64(query_stream_seed(idx.config().seed, i as u64));
            idx.quantify_fresh(q, 300, &mut rng)
        })
        .collect();
    for t in THREAD_COUNTS {
        let batch = idx.quantify_fresh_batch_with(&qs, 300, &BatchOptions::with_threads(t));
        assert_eq!(batch, seq, "threads = {t}");
    }
}

#[test]
fn quantify_adaptive_batch_bit_identical_across_thread_counts() {
    for points in [discrete_points(15, 3, 520), mixed_points(15, 521)] {
        let idx = PnnIndex::new(points);
        let qs = queries(96, 522);
        let seq: Vec<_> = qs
            .iter()
            .map(|&q| idx.quantify_adaptive(q, 0.05, 0.01))
            .collect();
        for t in THREAD_COUNTS {
            let batch =
                idx.quantify_adaptive_batch_with(&qs, 0.05, 0.01, &BatchOptions::with_threads(t));
            assert_eq!(batch, seq, "threads = {t}");
        }
    }
}

#[test]
fn quantify_adaptive_batch_shuffled_order_gives_permuted_results() {
    let idx = PnnIndex::new(mixed_points(15, 523));
    let qs = queries(120, 524);
    let (shuffled, perm) = shuffle(&qs, 525);
    let base = idx.quantify_adaptive_batch_with(&qs, 0.05, 0.01, &BatchOptions::with_threads(4));
    let shuf =
        idx.quantify_adaptive_batch_with(&shuffled, 0.05, 0.01, &BatchOptions::with_threads(4));
    for (pos, &orig) in perm.iter().enumerate() {
        assert_eq!(shuf[pos], base[orig]);
    }
}

#[test]
fn shuffled_query_order_gives_permuted_results() {
    // Per-query results must depend only on the query (and, for the fresh
    // API, its index): shuffling the batch permutes the deterministic
    // results and nothing else.
    let idx = PnnIndex::new(discrete_points(15, 3, 512));
    let qs = queries(200, 513);
    let (shuffled, perm) = shuffle(&qs, 514);
    let base = idx.nn_nonzero_batch_with(&qs, &BatchOptions::with_threads(4));
    let shuf = idx.nn_nonzero_batch_with(&shuffled, &BatchOptions::with_threads(4));
    for (pos, &orig) in perm.iter().enumerate() {
        assert_eq!(shuf[pos], base[orig]);
    }
    let (base_q, _) = idx.quantify_exact_batch_with(&qs, &BatchOptions::with_threads(4));
    let (shuf_q, _) = idx.quantify_exact_batch_with(&shuffled, &BatchOptions::with_threads(4));
    for (pos, &orig) in perm.iter().enumerate() {
        assert_eq!(shuf_q[pos], base_q[orig]);
    }
}

#[test]
fn ten_thousand_query_batch_matches_sequential() {
    // The acceptance-scale batch: 10k queries, bit-identical to the
    // sequential loop on cheap query families.
    let idx = PnnIndex::new(discrete_points(30, 2, 515));
    let qs = queries(10_000, 516);
    let opts = BatchOptions::with_threads(4);
    let seq_nz: Vec<Vec<usize>> = qs.iter().map(|&q| idx.nn_nonzero(q)).collect();
    assert_eq!(idx.nn_nonzero_batch_with(&qs, &opts), seq_nz);
    let seq_e: Vec<_> = qs.iter().map(|&q| idx.expected_nn(q)).collect();
    assert_eq!(idx.expected_nn_batch_with(&qs, &opts), seq_e);
}

#[test]
fn ten_thousand_query_batch_isolates_one_poison_query() {
    // The panic-isolation extension of the determinism contract: a 10k
    // batch containing one poison query completes with exactly that slot
    // reporting `QueryPanicked`, and every other slot bit-identical to the
    // sequential run without the poison query — at 1, 2, and 8 threads.
    let poison = Point::new(4321.0625, -8765.4375);
    let mut points = mixed_points(12, 530);
    points.push(Uncertain::Chaos(ChaosDistribution::new(
        Uncertain::uniform_disk(Point::new(2.0, -1.0), 1.0),
        // A pure function of the query point: which slot trips it cannot
        // depend on thread scheduling.
        ChaosMode::PanicAtQuery(poison),
    )));
    let idx = PnnIndex::new(points);
    let mut qs = queries(10_000, 531);
    let poison_slot = 617;
    qs[poison_slot] = poison;

    // Sequential reference over the clean queries only.
    let seq: Vec<Option<Vec<usize>>> = qs
        .iter()
        .enumerate()
        .map(|(i, &q)| (i != poison_slot).then(|| idx.nn_nonzero(q)))
        .collect();

    for t in THREAD_COUNTS {
        let batch = idx.nn_nonzero_batch_isolated_with(&qs, &BatchOptions::with_threads(t));
        assert_eq!(batch.len(), qs.len());
        for (i, slot) in batch.iter().enumerate() {
            if i == poison_slot {
                assert!(
                    matches!(slot, Err(UnnError::QueryPanicked { .. })),
                    "threads = {t}: poison slot reported {slot:?}"
                );
            } else {
                assert_eq!(
                    slot.as_ref().ok(),
                    seq[i].as_ref(),
                    "threads = {t}, slot = {i}"
                );
            }
        }
    }
}

#[test]
fn pipeline_metrics_bit_identical_across_thread_counts() {
    // The determinism contract extends to the observability layer: every
    // non-timing field of a `PipelineMetrics` snapshot is an
    // order-independent aggregate of deterministic per-query quantities, so
    // `snapshot().deterministic()` must be bit-identical at 1/2/8 threads.
    for points in [discrete_points(15, 3, 540), mixed_points(15, 541)] {
        let idx = PnnIndex::new(points);
        let qs = queries(96, 542);
        let reference = {
            let metrics = PipelineMetrics::new();
            idx.quantify_adaptive_batch_observed(
                &qs,
                0.05,
                0.01,
                &BatchOptions::with_threads(1),
                &metrics,
                &NullClock,
            );
            idx.nn_nonzero_batch_observed(
                &qs,
                &BatchOptions::with_threads(1),
                &metrics,
                &NullClock,
            );
            metrics.snapshot().deterministic()
        };
        assert_eq!(reference.queries, 2 * qs.len() as u64);
        for t in THREAD_COUNTS {
            let metrics = PipelineMetrics::new();
            let opts = BatchOptions::with_threads(t);
            idx.quantify_adaptive_batch_observed(&qs, 0.05, 0.01, &opts, &metrics, &NullClock);
            idx.nn_nonzero_batch_observed(&qs, &opts, &metrics, &NullClock);
            assert_eq!(
                metrics.snapshot().deterministic(),
                reference,
                "threads = {t}"
            );
        }
    }
}

#[test]
fn pipeline_metrics_invariant_under_shuffled_query_order() {
    // Metric aggregates are sums over the query *set*: permuting the batch
    // must not change a single non-timing field.
    let idx = PnnIndex::new(mixed_points(15, 543));
    let qs = queries(120, 544);
    let (shuffled, _) = shuffle(&qs, 545);
    let run = |qs: &[Point]| {
        let metrics = PipelineMetrics::new();
        let opts = BatchOptions::with_threads(4);
        idx.quantify_adaptive_batch_observed(qs, 0.05, 0.01, &opts, &metrics, &NullClock);
        metrics.snapshot().deterministic()
    };
    assert_eq!(run(&qs), run(&shuffled));
}

#[test]
fn ten_thousand_query_metrics_bit_identical_across_thread_counts() {
    // The acceptance-scale check: a 10k-query observed batch produces a
    // bit-identical deterministic snapshot at 1, 2, and 8 threads, and the
    // result-derived aggregates cross-check against the sequential results.
    let idx = PnnIndex::new(discrete_points(30, 2, 546));
    let qs = queries(10_000, 547);
    let mut snapshots = Vec::new();
    for t in THREAD_COUNTS {
        let metrics = PipelineMetrics::new();
        let opts = BatchOptions::with_threads(t);
        let out = idx.quantify_guarded_batch_observed(
            &qs,
            unn::QueryBudget::with_work(40),
            &opts,
            &metrics,
            &NullClock,
        );
        assert_eq!(out.len(), qs.len());
        snapshots.push(metrics.snapshot().deterministic());
    }
    let first = &snapshots[0];
    assert_eq!(first.queries, qs.len() as u64);
    // A 40-unit budget is below this corpus's exact-sweep cost, so every
    // query degrades; the degradation count must say exactly that.
    assert_eq!(first.degraded_count, qs.len() as u64);
    assert_eq!(first.exact_count, 0);
    assert!(snapshots.iter().all(|s| s == first));
}

/// A dynamic index with a mid-size churn history: inserts (some under
/// explicit ids), removals, and re-inserts, leaving a multi-block layout.
fn churned_dynamic(seed: u64) -> unn::dynamic::DynamicPnnIndex {
    use unn::dynamic::{DynamicPnnConfig, DynamicPnnIndex};
    let config = DynamicPnnConfig {
        mc_rounds: 256,
        ..DynamicPnnConfig::default()
    };
    let mut index = DynamicPnnIndex::with_config(config).unwrap_or_else(|e| panic!("config: {e}"));
    let points = mixed_points(18, seed);
    for p in &points {
        index.insert(p.clone());
    }
    for id in [2u64, 9, 14] {
        assert!(index.remove(id));
    }
    for id in [2u64, 14] {
        index
            .insert_with_id(id, points[id as usize].clone())
            .unwrap_or_else(|e| panic!("re-insert {id}: {e}"));
    }
    index
}

#[test]
fn dynamic_batch_bit_identical_across_thread_counts() {
    let snap = churned_dynamic(550).snapshot();
    let qs = queries(96, 551);
    let seq_nz: Vec<_> = qs.iter().map(|&q| snap.nn_nonzero(q)).collect();
    let seq_pi: Vec<_> = qs.iter().map(|&q| snap.quantify(q).0).collect();
    let seq_ad: Vec<_> = qs
        .iter()
        .map(|&q| snap.quantify_adaptive(q, 0.05, 0.01))
        .collect();
    for t in THREAD_COUNTS {
        let opts = BatchOptions::with_threads(t);
        assert_eq!(
            snap.nn_nonzero_batch_with(&qs, &opts),
            seq_nz,
            "threads = {t}"
        );
        assert_eq!(
            snap.quantify_batch_with(&qs, &opts),
            seq_pi,
            "threads = {t}"
        );
        assert_eq!(
            snap.quantify_adaptive_batch_with(&qs, 0.05, 0.01, &opts),
            seq_ad,
            "threads = {t}"
        );
    }
}

#[test]
fn dynamic_batch_invariant_to_block_layout() {
    // Three histories of the same live set: forward inserts with churn,
    // reverse-order inserts, and a heavily-compacted variant. The batch
    // results must be bit-identical across all of them — the block layout
    // is invisible — at every thread count.
    use unn::dynamic::{DynamicPnnConfig, DynamicPnnIndex};
    let base = churned_dynamic(552);
    let live = base.snapshot().live_points();

    let config = DynamicPnnConfig {
        mc_rounds: 256,
        ..DynamicPnnConfig::default()
    };
    let mut reversed =
        DynamicPnnIndex::with_config(config.clone()).unwrap_or_else(|e| panic!("config: {e}"));
    for (id, p) in live.iter().rev() {
        reversed
            .insert_with_id(*id, p.clone())
            .unwrap_or_else(|e| panic!("insert {id}: {e}"));
    }
    let mut compacted =
        DynamicPnnIndex::with_config(config).unwrap_or_else(|e| panic!("config: {e}"));
    for (id, p) in &live {
        compacted
            .insert_with_id(*id, p.clone())
            .unwrap_or_else(|e| panic!("insert {id}: {e}"));
    }
    // Extra churn that nets out: remove and re-insert half the set to force
    // tombstones, merges, and at least one compaction.
    for (id, p) in live.iter().take(live.len() / 2) {
        assert!(compacted.remove(*id));
        compacted
            .insert_with_id(*id, p.clone())
            .unwrap_or_else(|e| panic!("re-insert {id}: {e}"));
    }

    let (s0, s1, s2) = (base.snapshot(), reversed.snapshot(), compacted.snapshot());
    assert_eq!(s0.live_ids(), s1.live_ids());
    assert_eq!(s0.live_ids(), s2.live_ids());
    assert_ne!(
        base.stats().blocks_built,
        compacted.stats().blocks_built,
        "histories must differ structurally for the test to mean anything"
    );

    let qs = queries(64, 553);
    for t in THREAD_COUNTS {
        let opts = BatchOptions::with_threads(t);
        let nz = s0.nn_nonzero_batch_with(&qs, &opts);
        assert_eq!(nz, s1.nn_nonzero_batch_with(&qs, &opts), "threads = {t}");
        assert_eq!(nz, s2.nn_nonzero_batch_with(&qs, &opts), "threads = {t}");
        let pi = s0.quantify_batch_with(&qs, &opts);
        assert_eq!(pi, s1.quantify_batch_with(&qs, &opts), "threads = {t}");
        assert_eq!(pi, s2.quantify_batch_with(&qs, &opts), "threads = {t}");
        let ad = s0.quantify_adaptive_batch_with(&qs, 0.05, 0.01, &opts);
        assert_eq!(
            ad,
            s1.quantify_adaptive_batch_with(&qs, 0.05, 0.01, &opts),
            "threads = {t}"
        );
        assert_eq!(
            ad,
            s2.quantify_adaptive_batch_with(&qs, 0.05, 0.01, &opts),
            "threads = {t}"
        );
    }
}

#[test]
fn ambient_pool_default_matches_pinned() {
    let idx = PnnIndex::new(discrete_points(10, 3, 517));
    let qs = queries(128, 518);
    assert_eq!(
        idx.nn_nonzero_batch(&qs),
        idx.nn_nonzero_batch_with(&qs, &BatchOptions::with_threads(2))
    );
    assert_eq!(
        idx.quantify_fresh_batch(&qs, 100),
        idx.quantify_fresh_batch_with(&qs, 100, &BatchOptions::with_threads(2))
    );
}
