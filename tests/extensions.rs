//! Integration tests for the extension surface: polygonal supports
//! (Thm 2.6), L∞/L1 metrics (§3 remark (ii)), guaranteed NN (`[SE08]`),
//! the Apollonius diagram 𝕄 (§2.1), and probabilistic k-NN membership.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::distr::UncertainPoint;
use unn::geom::{Aabb, Point};
use unn::nonzero::{ApolloniusDiagram, GuaranteedNnIndex, LinfNonzeroIndex};
use unn::quantify::knn_membership_exact;
use unn::{PnnIndex, Uncertain, UniformPolygon};

fn polygon_world(seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..10)
        .map(|i| {
            let c = Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0));
            match i % 3 {
                0 => Uncertain::Polygon(UniformPolygon::regular(
                    c,
                    rng.random_range(0.5..2.0),
                    3 + (i % 5),
                )),
                1 => Uncertain::uniform_disk(c, rng.random_range(0.5..2.0)),
                _ => Uncertain::certain(c),
            }
        })
        .collect()
}

/// Polygon supports flow through the whole pipeline: NN!=0, quantify
/// (Monte-Carlo), numeric integration, expected NN — and they agree.
#[test]
fn polygon_supports_end_to_end() {
    let points = polygon_world(900);
    let idx = PnnIndex::new(points.clone());
    let mut rng = SmallRng::seed_from_u64(901);
    for _ in 0..20 {
        let q = Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0));
        let nz = idx.nn_nonzero(q);
        assert!(!nz.is_empty());
        let (mc, _) = idx.quantify(q);
        let (nu, _) = idx.quantify_exact(q);
        for (i, (a, b)) in mc.iter().zip(&nu).enumerate() {
            assert!((a - b).abs() < 0.08, "i={i}: mc={a} numeric={b} at {q:?}");
            if *b > 1e-6 {
                assert!(nz.contains(&i), "positive mass outside NN!=0");
            }
        }
        // Expected NN is one of the candidates or at least geometrically
        // sane (its expected distance bounded by min/max support dists).
        let (e, d) = idx.expected_nn(q).unwrap();
        assert!(d >= points[e].min_dist(q) - 1e-9);
        assert!(d <= points[e].max_dist(q) + 1e-9);
    }
}

/// The L1 (rotated) and naive L∞ paths agree on diamond supports.
#[test]
fn l1_diamonds_match_direct_computation() {
    let mut rng = SmallRng::seed_from_u64(910);
    let centers: Vec<Point> = (0..30)
        .map(|_| Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0)))
        .collect();
    let radii: Vec<f64> = (0..30).map(|_| rng.random_range(0.5..3.0)).collect();
    let idx = LinfNonzeroIndex::from_l1_diamonds(&centers, &radii);
    // Direct L1 computation: delta = max(0, l1(q,c) - r), Delta = l1 + r.
    for _ in 0..200 {
        let q = Point::new(rng.random_range(-35.0..35.0), rng.random_range(-35.0..35.0));
        let l1 = |a: Point, b: Point| (a.x - b.x).abs() + (a.y - b.y).abs();
        let caps: Vec<f64> = centers
            .iter()
            .zip(&radii)
            .map(|(&c, &r)| l1(q, c) + r)
            .collect();
        let want: Vec<usize> = (0..30)
            .filter(|&i| {
                let di = (l1(q, centers[i]) - radii[i]).max(0.0);
                caps.iter().enumerate().all(|(j, &c)| j == i || di < c)
            })
            .collect();
        assert_eq!(idx.query_l1(q), want, "q = {q:?}");
    }
}

/// Guaranteed NN, NN!=0, and quantification are mutually consistent:
/// guaranteed ⇒ singleton candidates ⇒ probability 1.
#[test]
fn guaranteed_nn_probability_is_one() {
    let mut rng = SmallRng::seed_from_u64(920);
    let disks: Vec<unn::geom::Disk> = (0..20)
        .map(|_| {
            unn::geom::Disk::new(
                Point::new(rng.random_range(-40.0..40.0), rng.random_range(-40.0..40.0)),
                rng.random_range(0.3..1.5),
            )
        })
        .collect();
    let g = GuaranteedNnIndex::new(&disks);
    let points: Vec<Uncertain> = disks
        .iter()
        .map(|d| Uncertain::uniform_disk(d.center, d.radius))
        .collect();
    let idx = PnnIndex::new(points);
    let mut found = 0;
    for _ in 0..200 {
        let q = Point::new(rng.random_range(-45.0..45.0), rng.random_range(-45.0..45.0));
        if let Some(i) = g.guaranteed_nn(q) {
            found += 1;
            assert_eq!(idx.nn_nonzero(q), vec![i]);
            let (pi, _) = idx.quantify(q);
            assert!((pi[i] - 1.0).abs() < 1e-9, "pi = {}", pi[i]);
            assert_eq!(idx.guaranteed_nn(q), Some(i));
        }
    }
    assert!(found > 50, "too few guaranteed queries: {found}");
}

/// Apollonius cells partition the plane consistently with stage-1 queries.
#[test]
fn apollonius_agrees_with_stage_one() {
    let mut rng = SmallRng::seed_from_u64(930);
    let disks: Vec<unn::geom::Disk> = (0..15)
        .map(|_| {
            unn::geom::Disk::new(
                Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0)),
                rng.random_range(0.2..2.5),
            )
        })
        .collect();
    let ap = ApolloniusDiagram::build(&disks);
    let two_stage = unn::nonzero::DiskNonzeroIndex::new(&disks);
    for _ in 0..300 {
        let q = Point::new(rng.random_range(-35.0..35.0), rng.random_range(-35.0..35.0));
        let (winner, delta) = ap.weighted_nn(q).unwrap();
        assert!((two_stage.min_max_dist(q).unwrap() - delta).abs() < 1e-9);
        // Away from boundaries the winner's cell contains q.
        let second = disks
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != winner)
            .map(|(_, d)| d.max_dist(q))
            .fold(f64::INFINITY, f64::min);
        if second - delta > 1e-9 {
            assert!(ap.cell_contains(winner, q));
        }
    }
}

/// k-NN membership interacts correctly with NN!=0: membership for k=1 is
/// positive exactly on the candidate set (up to numeric zeros).
#[test]
fn knn_membership_respects_candidates() {
    let mut rng = SmallRng::seed_from_u64(940);
    let objs: Vec<unn::DiscreteDistribution> = (0..10)
        .map(|_| {
            let c = Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0));
            unn::DiscreteDistribution::uniform(
                (0..3)
                    .map(|_| {
                        Point::new(
                            c.x + rng.random_range(-2.0..2.0),
                            c.y + rng.random_range(-2.0..2.0),
                        )
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect();
    let nzidx = unn::nonzero::DiscreteNonzeroIndex::from_distributions(&objs);
    for _ in 0..50 {
        let q = Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0));
        let m1 = knn_membership_exact(&objs, q, 1);
        let nz = nzidx.query(q);
        for (i, &p) in m1.iter().enumerate() {
            if p > 1e-12 {
                assert!(nz.contains(&i), "i={i} has pi={p} but not candidate");
            }
        }
        // Membership monotone in k, and reaches 1 for all at k=n.
        let mn = knn_membership_exact(&objs, q, objs.len());
        assert!(mn.iter().all(|&p| (p - 1.0).abs() < 1e-12));
    }
}

/// Mixed heterogeneous index: all models in one set, every query type runs.
#[test]
fn kitchen_sink_heterogeneous_index() {
    let mut rng = SmallRng::seed_from_u64(950);
    let mut points = polygon_world(951);
    points.push(Uncertain::Gaussian(unn::TruncatedGaussian::with_sigmas(
        Point::new(0.0, 0.0),
        1.0,
        3.0,
    )));
    points.push(Uncertain::Histogram(unn::HistogramDistribution::new(
        Aabb::new(Point::new(5.0, 5.0), Point::new(8.0, 7.0)),
        3,
        2,
        vec![1.0, 0.0, 2.0, 1.0, 1.0, 3.0],
    )));
    let idx = PnnIndex::new(points);
    for _ in 0..10 {
        let q = Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0));
        let nz = idx.nn_nonzero(q);
        assert!(!nz.is_empty());
        let (pi, _) = idx.quantify(q);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let (memb, _) = idx.knn_membership(q, 3);
        assert!((memb.iter().sum::<f64>() - 3.0).abs() < 1e-9);
        let _ = idx.guaranteed_nn(q);
        let _ = idx.expected_knn(q, 4);
    }
}
