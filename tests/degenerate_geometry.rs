//! Property tests feeding degenerate geometry through the resilient
//! pipeline: duplicate sites, collinear triples, and zero-area supports
//! must yield typed errors or valid answers — never panics — and on clean
//! inputs `ValidationPolicy::Repair` must build the same index as
//! `ValidationPolicy::Strict`.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::distr::DiscreteDistribution;
use unn::geom::{Aabb, Point};
use unn::quantify::{quantification_exact, ProbabilisticVoronoi};
use unn::{PnnIndex, QueryBudget, Uncertain, UnnError, ValidationPolicy};

fn singleton(p: Point) -> Uncertain {
    Uncertain::Discrete(DiscreteDistribution::certain(p))
}

/// A degenerate instance: `kind` selects the degeneracy class.
fn degenerate_instance(kind: usize, n: usize, seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = n.max(3);
    match kind % 3 {
        // Duplicate sites: two identical distributions among the rest.
        0 => {
            let mut pts: Vec<Uncertain> = (0..n)
                .map(|_| {
                    singleton(Point::new(
                        rng.random_range(-10.0..10.0),
                        rng.random_range(-10.0..10.0),
                    ))
                })
                .collect();
            pts[n - 1] = pts[0].clone();
            pts
        }
        // Collinear: every site on one random line through the origin.
        1 => {
            let (dx, dy) = (rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0));
            let (dx, dy) = if dx == 0.0 && dy == 0.0 {
                (1.0, 0.0)
            } else {
                (dx, dy)
            };
            (0..n)
                .map(|i| {
                    let t = i as f64 - n as f64 / 2.0;
                    singleton(Point::new(t * dx, t * dy))
                })
                .collect()
        }
        // Zero-area supports: discrete points whose k locations coincide.
        _ => (0..n)
            .map(|_| {
                let c = Point::new(rng.random_range(-10.0..10.0), rng.random_range(-10.0..10.0));
                Uncertain::Discrete(DiscreteDistribution::new(vec![c; 4], vec![0.25; 4]).unwrap())
            })
            .collect(),
    }
}

fn clean_instance(n: usize, k: usize, seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            // Spread centers on a coarse grid so exact duplicates cannot
            // occur by accident.
            let c = Point::new(
                (i % 7) as f64 * 8.0 + rng.random_range(0.0..4.0),
                (i / 7) as f64 * 8.0 + rng.random_range(0.0..4.0),
            );
            Uncertain::Discrete(
                DiscreteDistribution::uniform(
                    (0..k)
                        .map(|_| {
                            Point::new(
                                c.x + rng.random_range(-1.0..1.0),
                                c.y + rng.random_range(-1.0..1.0),
                            )
                        })
                        .collect(),
                )
                .unwrap(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Degenerate inputs produce typed errors or valid answers through
    /// `nn_nonzero`, exact quantification, and the budgeted path — no
    /// panics, and repaired builds answer every finite query.
    #[test]
    fn degenerate_inputs_err_or_answer(
        kind in 0usize..3, n in 3usize..8, seed in 0u64..100_000,
        qx in -15.0f64..15.0, qy in -15.0f64..15.0,
    ) {
        let points = degenerate_instance(kind, n, seed);
        let strict = PnnIndex::try_build(
            points.clone(),
            unn::PnnConfig::default(),
            ValidationPolicy::Strict,
        );
        if kind % 3 == 0 {
            // Duplicate sites: Strict must reject with geometry, Repair
            // must dedupe and then answer.
            let rejected = matches!(strict, Err(UnnError::DegenerateGeometry { .. }));
            prop_assert!(rejected, "strict must reject duplicates: {:?}", strict.err());
        } else {
            prop_assert!(strict.is_ok());
        }
        let repaired = PnnIndex::try_build(
            points,
            unn::PnnConfig::default(),
            ValidationPolicy::Repair,
        );
        prop_assert!(repaired.is_ok());
        let idx = repaired.unwrap();
        let q = Point::new(qx, qy);
        let nz = idx.try_nn_nonzero(q);
        prop_assert!(nz.is_ok(), "nn_nonzero: {:?}", nz);
        prop_assert!(!nz.unwrap().is_empty());
        let out = idx.quantify_guarded(q, QueryBudget::unlimited());
        prop_assert!(out.is_ok(), "quantify_guarded: {:?}", out);
        let pi = out.unwrap();
        prop_assert_eq!(pi.pi().len(), idx.len());
        let sum: f64 = pi.pi().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
    }

    /// The `𝒱_Pr` sweep survives degenerate site sets (parallel bisectors
    /// from collinear sites, coincident locations) and keeps answering
    /// with normalized probability vectors.
    #[test]
    fn vpr_survives_degenerate_sites(
        kind in 1usize..3, n in 3usize..6, seed in 0u64..100_000,
        qx in -12.0f64..12.0, qy in -12.0f64..12.0,
    ) {
        let objs: Vec<DiscreteDistribution> = degenerate_instance(kind, n, seed)
            .iter()
            .map(|p| match p {
                Uncertain::Discrete(d) => d.clone(),
                _ => unreachable!(),
            })
            .collect();
        let bbox = Aabb::new(Point::new(-15.0, -15.0), Point::new(15.0, 15.0));
        let vpr = ProbabilisticVoronoi::try_build(&objs, bbox);
        prop_assert!(vpr.is_ok(), "try_build: {:?}", vpr.err());
        let pi = vpr.unwrap().query(Point::new(qx, qy));
        prop_assert_eq!(pi.len(), objs.len());
        let sum: f64 = pi.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        // The exact sweep agrees on the vector length and normalization.
        let exact = quantification_exact(&objs, Point::new(qx, qy));
        prop_assert_eq!(exact.len(), pi.len());
    }

    /// On clean inputs, Strict and Repair build *identical* indexes: same
    /// points, same queries, bit-identical answers.
    #[test]
    fn repair_equals_strict_on_clean_inputs(
        n in 3usize..10, k in 1usize..4, seed in 0u64..100_000,
        qx in -20.0f64..40.0, qy in -20.0f64..40.0,
    ) {
        let points = clean_instance(n, k, seed);
        let strict = PnnIndex::try_build(
            points.clone(),
            unn::PnnConfig::default(),
            ValidationPolicy::Strict,
        );
        let repair = PnnIndex::try_build(
            points.clone(),
            unn::PnnConfig::default(),
            ValidationPolicy::Repair,
        );
        prop_assert!(strict.is_ok() && repair.is_ok());
        let (s, r) = (strict.unwrap(), repair.unwrap());
        prop_assert_eq!(s.len(), points.len());
        prop_assert_eq!(s.points(), r.points());
        let q = Point::new(qx, qy);
        prop_assert_eq!(s.nn_nonzero(q), r.nn_nonzero(q));
        prop_assert_eq!(s.quantify(q), r.quantify(q));
        prop_assert_eq!(s.quantify_exact(q), r.quantify_exact(q));
        let b = QueryBudget::with_work(8);
        prop_assert_eq!(s.quantify_within(q, b), r.quantify_within(q, b));
        // And both match the unchecked constructor on the same input.
        let plain = PnnIndex::build(points, unn::PnnConfig::default());
        prop_assert_eq!(plain.quantify(q), s.quantify(q));
        prop_assert_eq!(plain.nn_nonzero(q), s.nn_nonzero(q));
    }
}
