//! The f32 filter tier's equivalence contract: with
//! [`FilterPrecision::F32Refined`] every read path — nearest, m-nearest,
//! disk reports, capped reports, weighted minima, box minima, prune folds,
//! forests, the Monte-Carlo quantify pipeline, and the dynamic engine —
//! must be **bit-identical** to the exact-f64 default, on every shared
//! testkit corpus, at any query parallelism.
//!
//! On top of the broad equivalence sweep, `NearTieForge` supplies directed
//! instances whose f32 distances tie while the f64 distances differ, with
//! the shared f32 value rounding *above* the farther exact distance: these
//! cases answer wrongly under any unwidened f32 admission gate (see the
//! forge's module docs), so this suite fails if the conservative widening
//! band of `f32_widened_threshold` is ever removed or narrowed below the
//! true error.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use unn::dynamic::{DynamicPnnConfig, DynamicPnnIndex};
use unn::PnnConfig;
use unn_geom::Point;
use unn_quantify::{McBackend, MonteCarloIndex};
use unn_spatial::{FilterPrecision, KdConfig, KdForest, KdTree};
use unn_testkit::sig::{configs, forest_signature, kd_signature};
use unn_testkit::{churn, corpus, NearTieForge};

/// Builds the F64 and F32Refined twins of one corpus under one layout and
/// asserts their full batched signatures (and the f32 tree's scalar
/// signature, which must ignore the filter entirely) are bit-identical.
fn check_precision_pair(pts: &[Point], queries: &[Point], lo: &[f64], hi: &[f64], label: &str) {
    let boxes = corpus::support_boxes(pts, lo);
    for cfg in configs() {
        let t64 = KdTree::with_aux_bounds_config(pts, lo, hi, cfg);
        let t32 = KdTree::with_aux_bounds_config(
            pts,
            lo,
            hi,
            cfg.with_filter(FilterPrecision::F32Refined),
        );
        assert_eq!(t64.filter_precision(), FilterPrecision::F64);
        assert_eq!(t32.filter_precision(), FilterPrecision::F32Refined);
        let sig64 = kd_signature(&t64, pts, lo, &boxes, queries, false);
        let sig32 = kd_signature(&t32, pts, lo, &boxes, queries, false);
        assert_eq!(
            sig64, sig32,
            "f32-filtered batched path diverged from f64 on `{label}` under {cfg:?}"
        );
        let scalar32 = kd_signature(&t32, pts, lo, &boxes, queries, true);
        assert_eq!(
            sig32, scalar32,
            "scalar oracle diverged on the f32-filtered tree on `{label}` under {cfg:?}"
        );
    }
    // Forest twins: same rounds, filters differ.
    if pts.len() >= 3 {
        let mut f64_forest = KdForest::new();
        let mut f32_forest = KdForest::new();
        f32_forest.set_filter(FilterPrecision::F32Refined);
        for f in [&mut f64_forest, &mut f32_forest] {
            f.push_round(&pts[..pts.len() / 3]);
            f.push_round(&[]);
            f.push_round(&pts[pts.len() / 3..]);
            f.push_round(pts);
        }
        assert_eq!(
            forest_signature(&f64_forest, queries, false),
            forest_signature(&f32_forest, queries, false),
            "forest f32/f64 divergence on `{label}`"
        );
    }
}

fn check_named(pts: &[Point], seed: u64, label: &str) {
    let (lo, hi) = corpus::aux_offsets(pts.len(), seed);
    let queries = corpus::queries_for(5, pts, seed);
    check_precision_pair(pts, &queries, &lo, &hi, label);
}

// ---------------------------------------------------------------------------
// Random and churned corpora (proptest)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn f32_refined_matches_f64_on_random_corpora(n in 1usize..140, seed in 0u64..1_000_000) {
        check_named(&corpus::points(n, seed), seed, "random");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn f32_refined_matches_f64_on_churned_corpora(
        initial in 3usize..10,
        ops in proptest::collection::vec((proptest::bool::ANY, 0u64..1_000_000), 4..24),
        seed in 0u64..10_000,
    ) {
        let config = DynamicPnnConfig {
            base: PnnConfig { epsilon: 0.05, delta: 0.01, ..PnnConfig::default() },
            mc_rounds: 96,
            ..DynamicPnnConfig::default()
        };
        let survivors = churn::survivors(initial, &ops, seed, config);
        if survivors.is_empty() {
            return Ok(());
        }
        let centers: Vec<Point> = survivors
            .iter()
            .map(|u| {
                use unn_distr::UncertainPoint;
                u.support_bbox().center()
            })
            .collect();
        check_named(&centers, seed ^ 0xC2, "churned");
    }
}

// ---------------------------------------------------------------------------
// Adversarial geometry, including the 1e308 scale-guard fallback and the
// denormal underflow regime.
// ---------------------------------------------------------------------------

#[test]
fn f32_refined_matches_f64_on_adversarial_corpora() {
    for (name, pts) in corpus::adversarial() {
        let zeros = vec![0.0; pts.len()];
        let mut queries = vec![
            pts[0],
            pts[pts.len() - 1],
            Point::new(0.0, 0.0),
            Point::new(1e-308, -5e-324),
            Point::new(7.25, -7.25),
        ];
        // Beyond F32_SAFE_SCALE from the query side: the per-query
        // fallback to the exact fill must keep the signatures equal.
        queries.push(Point::new(1e308, 1e307));
        check_precision_pair(&pts, &queries, &zeros, &zeros, name);
        let (lo, hi) = corpus::aux_offsets(pts.len(), 0x5A5A);
        check_precision_pair(&pts, &queries, &lo, &hi, name);
    }
}

// ---------------------------------------------------------------------------
// Thread determinism at 1 / 2 / 8 threads: the f32-filtered tree must
// reproduce the f64 reference signature from any number of concurrent
// readers.
// ---------------------------------------------------------------------------

#[test]
fn f32_refined_is_bit_identical_across_threads() {
    let mut corpora: Vec<(String, Vec<Point>)> = corpus::adversarial()
        .into_iter()
        .map(|(n, p)| (n.to_string(), p))
        .collect();
    corpora.push(("random".into(), corpus::points(300, 0xF32)));
    for (name, pts) in corpora {
        let (lo, hi) = corpus::aux_offsets(pts.len(), 0xF32);
        let boxes = corpus::support_boxes(&pts, &lo);
        let queries = corpus::queries_for(4, &pts, 0xF32);
        let cfg = KdConfig::scan_heavy();
        let t64 = KdTree::with_aux_bounds_config(&pts, &lo, &hi, cfg);
        let t32 = KdTree::with_aux_bounds_config(
            &pts,
            &lo,
            &hi,
            cfg.with_filter(FilterPrecision::F32Refined),
        );
        let reference = kd_signature(&t64, &pts, &lo, &boxes, &queries, false);
        for threads in [1usize, 2, 8] {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| scope.spawn(|| kd_signature(&t32, &pts, &lo, &boxes, &queries, false)))
                    .collect();
                for h in handles {
                    let got = h.join().expect("query thread panicked");
                    assert_eq!(
                        got, reference,
                        "f32 signature diverged from f64 reference on `{name}` at {threads} threads"
                    );
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Directed near-tie cases: wrong under any unwidened f32 gate.
// ---------------------------------------------------------------------------

#[test]
fn forged_near_ties_answer_identically_and_correctly() {
    let mut forge = NearTieForge::new(0x7165);
    for inst in forge.forge_many(48, 6) {
        let zeros = vec![0.0; inst.points.len()];
        for cfg in configs() {
            let t64 = KdTree::with_aux_bounds_config(&inst.points, &zeros, &zeros, cfg);
            let t32 = KdTree::with_aux_bounds_config(
                &inst.points,
                &zeros,
                &zeros,
                cfg.with_filter(FilterPrecision::F32Refined),
            );
            // Open-threshold nearest: the true f64 winner, both tiers.
            let n64 = t64.nearest_within(inst.query, f64::INFINITY);
            let n32 = t32.nearest_within(inst.query, f64::INFINITY);
            assert_eq!(n64, n32, "nearest diverged under {cfg:?}");
            let n = n64.unwrap_or_else(|| panic!("nonempty corpus must have a nearest"));
            assert_eq!(
                n.id, inst.true_nearest,
                "f32 numbers answered instead of rejecting"
            );
            assert_eq!(n.dist.to_bits(), inst.d_near.to_bits());

            // Tight-threshold probe at t0 = d_far: both tied points pass
            // the exact gate but both f32 fills exceed t0, so an unwidened
            // gate rejects the pair outright and this assertion fails.
            let p64 = t64.nearest_within(inst.query, inst.d_far * (1.0 + 1e-12));
            let p32 = t32.nearest_within(inst.query, inst.d_far * (1.0 + 1e-12));
            assert_eq!(p64, p32, "tight-threshold nearest diverged under {cfg:?}");
            let p = p64.unwrap_or_else(|| panic!("true nearest lies inside the probe threshold"));
            assert_eq!(p.id, inst.true_nearest);
        }
        // Full battery over the forged corpus for good measure.
        let queries = vec![inst.query];
        check_precision_pair(&inst.points, &queries, &zeros, &zeros, "near-tie");
    }
}

// ---------------------------------------------------------------------------
// Mid-batch threshold tightening (regression for the widened-threshold
// cache): several tied pairs stacked into ONE leaf in descending radius
// order, so the admission threshold tightens repeatedly *within a single
// fill batch* and the widened threshold must be recomputed per slot.
// ---------------------------------------------------------------------------

#[test]
fn mid_batch_tightened_threshold_gates_identically() {
    let mut forge = NearTieForge::new(0xBA7C);
    let q = Point::new(0.25, -0.5);
    let mut pts: Vec<Point> = Vec::new();
    for r in [40.0, 20.0, 10.0, 5.0, 2.5] {
        let pair = forge.forge_pair_at(q, r);
        pts.push(pair.far);
        pts.push(pair.near);
    }
    // A final point closer than every tie: the last tightening.
    pts.push(Point::new(q.x + 1.0, q.y));
    // One flat leaf: the scan visits all slots in a single batch, so every
    // tightening lands mid-batch rather than at a node boundary.
    let one_leaf = KdConfig {
        leaf_size: 1024,
        brute_force_below: 1024,
        ..KdConfig::default()
    };
    let zeros = vec![0.0; pts.len()];
    let boxes = corpus::support_boxes(&pts, &zeros);
    let queries = vec![q];
    let t64 = KdTree::with_aux_bounds_config(&pts, &zeros, &zeros, one_leaf);
    let t32 = KdTree::with_aux_bounds_config(
        &pts,
        &zeros,
        &zeros,
        one_leaf.with_filter(FilterPrecision::F32Refined),
    );
    assert_eq!(
        kd_signature(&t64, &pts, &zeros, &boxes, &queries, false),
        kd_signature(&t32, &pts, &zeros, &boxes, &queries, false),
        "mid-batch tightening gated differently in the f32-filtered path"
    );
    assert_eq!(
        kd_signature(&t32, &pts, &zeros, &boxes, &queries, false),
        kd_signature(&t32, &pts, &zeros, &boxes, &queries, true),
        "f32-filtered path diverged from the scalar oracle under mid-batch tightening"
    );
    // The winner is the final tightener, reached only after every tied
    // pair re-widened the cached threshold.
    let n = t64
        .nearest_within(q, f64::INFINITY)
        .unwrap_or_else(|| panic!("corpus is nonempty"));
    assert_eq!(n.id, pts.len() - 1);
    assert_eq!(
        n,
        t32.nearest_within(q, f64::INFINITY)
            .unwrap_or_else(|| panic!("twin"))
    );
}

// ---------------------------------------------------------------------------
// The tier threaded end to end: Monte-Carlo quantify pipeline and the
// dynamic engine must be bit-identical under both precisions.
// ---------------------------------------------------------------------------

#[test]
fn montecarlo_pipeline_f32_matches_f64() {
    let points = corpus::uniform_disks(14, 0x4D43, 0.3, 2.5);
    let build = |filter| {
        let mut rng = SmallRng::seed_from_u64(0x4D43);
        MonteCarloIndex::build_with_filter(&points, 64, McBackend::KdTree, &mut rng, filter)
    };
    let i64 = build(FilterPrecision::F64);
    let i32_ = build(FilterPrecision::F32Refined);
    let (mut pi64, mut pi32) = (Vec::new(), Vec::new());
    for q in corpus::query_points(8, 0x9, 25.0) {
        assert_eq!(
            i64.prune_radius(q).to_bits(),
            i32_.prune_radius(q).to_bits(),
            "prune_radius diverged at {q:?}"
        );
        i64.query_into(q, &mut pi64);
        i32_.query_into(q, &mut pi32);
        let a: Vec<u64> = pi64.iter().map(|p| p.to_bits()).collect();
        let b: Vec<u64> = pi32.iter().map(|p| p.to_bits()).collect();
        assert_eq!(a, b, "membership probabilities diverged at {q:?}");
    }
}

#[test]
fn dynamic_engine_f32_matches_f64() {
    let config = |filter| DynamicPnnConfig {
        base: PnnConfig {
            epsilon: 0.05,
            delta: 0.01,
            ..PnnConfig::default()
        },
        mc_rounds: 128,
        filter,
        ..DynamicPnnConfig::default()
    };
    let drive = |filter| {
        let mut index = DynamicPnnIndex::with_config(config(filter))
            .unwrap_or_else(|e| panic!("config rejected: {e}"));
        for p in corpus::uniform_disks(18, 0xD1F7, 0.3, 2.5) {
            index.insert(p);
        }
        for victim in [2u64, 7, 11] {
            assert!(index.remove(victim));
        }
        index
    };
    let (a, b) = (
        drive(FilterPrecision::F64),
        drive(FilterPrecision::F32Refined),
    );
    let (sa, sb) = (a.snapshot(), b.snapshot());
    for q in corpus::query_points(10, 0xD1F8, 25.0) {
        assert_eq!(
            sa.nn_nonzero(q),
            sb.nn_nonzero(q),
            "NN!=0 diverged at {q:?}"
        );
        assert_eq!(sa.quantify(q), sb.quantify(q), "quantify diverged at {q:?}");
        assert_eq!(
            sa.quantify_adaptive(q, 0.05, 0.01),
            sb.quantify_adaptive(q, 0.05, 0.01),
            "adaptive diverged at {q:?}"
        );
    }
}

#[test]
fn serve_tier_f32_matches_f64() {
    use std::sync::Arc;
    use unn::serve::{DispatchConfig, Dispatcher, Request, ServeConfig, ShardPolicy, ShardSet};
    use unn_observe::NullClock;

    let points = corpus::weighted_discrete(18, 3, 0x53F2);
    let serve = |filter| {
        let cfg = ServeConfig {
            mc_rounds: 128,
            filter,
            ..ServeConfig::default()
        };
        let mut set = ShardSet::new(3, ShardPolicy::Hash, cfg)
            .unwrap_or_else(|e| panic!("serve config rejected: {e}"));
        for p in &points {
            set.insert(p.clone());
        }
        set.snapshot()
    };
    let (snap64, snap32) = (
        serve(FilterPrecision::F64),
        serve(FilterPrecision::F32Refined),
    );
    let queries = corpus::query_points(8, 0x53F3, 25.0);
    let requests: Vec<Request> = queries.iter().map(|&q| Request::Quantify(q)).collect();
    let mut d64 = Dispatcher::for_snapshot(&snap64, DispatchConfig::default(), Arc::new(NullClock))
        .unwrap_or_else(|e| panic!("dispatcher: {e}"));
    let mut d32 = Dispatcher::for_snapshot(&snap32, DispatchConfig::default(), Arc::new(NullClock))
        .unwrap_or_else(|e| panic!("dispatcher: {e}"));
    let (r64, r32) = (d64.serve(&requests), d32.serve(&requests));
    assert_eq!(r64.len(), r32.len());
    for (x, y) in r64.iter().zip(&r32) {
        assert_eq!(
            format!("{:?}", x.outcome),
            format!("{:?}", y.outcome),
            "serve outcome diverged between precisions"
        );
    }
}
