//! Conformance suite: the approximate estimators agree with the exact
//! oracle within their advertised bounds, and `NN≠0` covers every
//! realizable nearest neighbor.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::batch::query_stream_seed;
use unn::distr::DiscreteDistribution;
use unn::geom::Point;
use unn::quantify::MonteCarloIndex;
use unn::{PnnConfig, PnnIndex, QuantifyMethod, Uncertain, UncertainPoint};

fn random_discrete_instance(n: usize, k: usize, seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.random_range(-25.0..25.0);
            let cy: f64 = rng.random_range(-25.0..25.0);
            let pts: Vec<Point> = (0..k)
                .map(|_| {
                    Point::new(
                        cx + rng.random_range(-4.0..4.0),
                        cy + rng.random_range(-4.0..4.0),
                    )
                })
                .collect();
            let ws: Vec<f64> = (0..k).map(|_| rng.random_range(0.1..3.0)).collect();
            Uncertain::Discrete(DiscreteDistribution::new(pts, ws).unwrap())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Spiral-search quantification stays within the configured additive ε
    /// of the exact Eq. 2 sweep on random discrete instances.
    #[test]
    fn spiral_quantify_within_epsilon_of_exact(
        seed in 0u64..100_000, qx in -30.0f64..30.0, qy in -30.0f64..30.0,
    ) {
        let idx = PnnIndex::new(random_discrete_instance(8, 3, seed));
        let q = Point::new(qx, qy);
        let (pi, method) = idx.quantify(q);
        prop_assert_eq!(method, QuantifyMethod::Spiral);
        let (exact, _) = idx.quantify_exact(q);
        let eps = idx.config().epsilon;
        for (i, (a, e)) in pi.iter().zip(&exact).enumerate() {
            prop_assert!((a - e).abs() <= eps + 1e-9, "i={}: spiral={} exact={}", i, a, e);
        }
    }

    /// Monte-Carlo quantification (fresh per-query streams, the batch
    /// layer's randomized path) stays within ε of the exact sweep when run
    /// with the Theorem 4.3 per-query round count.
    #[test]
    fn monte_carlo_quantify_within_epsilon_of_exact(
        seed in 0u64..100_000, qi in 0u64..64, qx in -30.0f64..30.0, qy in -30.0f64..30.0,
    ) {
        let points = random_discrete_instance(6, 3, seed);
        let idx = PnnIndex::new(points);
        let q = Point::new(qx, qy);
        let eps = 0.05;
        // One query asked of this stream: m = 1 in the per-query bound.
        let s = MonteCarloIndex::samples_for_queries(eps, 0.001, idx.len(), 1);
        let mut rng = SmallRng::seed_from_u64(query_stream_seed(idx.config().seed, qi));
        let pi = idx.quantify_fresh(q, s, &mut rng);
        let (exact, _) = idx.quantify_exact(q);
        for (i, (a, e)) in pi.iter().zip(&exact).enumerate() {
            prop_assert!((a - e).abs() <= eps, "i={}: mc={} exact={}", i, a, e);
        }
        let sum: f64 = pi.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// The prebuilt Monte-Carlo structure conforms too: `quantify` on a
    /// continuous-free instance forced down the MC path sums to 1 and tracks
    /// the exact sweep within the build ε.
    #[test]
    fn prebuilt_monte_carlo_within_epsilon_of_exact(
        seed in 0u64..100_000, qx in -30.0f64..30.0, qy in -30.0f64..30.0,
    ) {
        let points = random_discrete_instance(6, 2, seed);
        let mc = {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
            let s = MonteCarloIndex::samples_for_queries(0.05, 0.001, 6, 1);
            MonteCarloIndex::build(&points, s, unn::quantify::McBackend::KdTree, &mut rng)
        };
        let idx = PnnIndex::new(points);
        let q = Point::new(qx, qy);
        let est = mc.query(q);
        let (exact, _) = idx.quantify_exact(q);
        for (a, e) in est.iter().zip(&exact) {
            prop_assert!((a - e).abs() <= 0.05, "mc={} exact={}", a, e);
        }
    }

    /// Lemma 2.1 completeness: `nn_nonzero(q)` contains the true nearest
    /// neighbor of every sampled instantiation of the uncertain set.
    #[test]
    fn nn_nonzero_contains_nn_of_every_instantiation(
        seed in 0u64..100_000, qx in -30.0f64..30.0, qy in -30.0f64..30.0,
    ) {
        let points = random_discrete_instance(12, 3, seed);
        let idx = PnnIndex::new(points.clone());
        let q = Point::new(qx, qy);
        let nz = idx.nn_nonzero(q);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x1234);
        for _ in 0..64 {
            let winner = points
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.sample(&mut rng).dist(q)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            // Exclude exact ties (measure-zero; Eq. 2 assigns them zero mass).
            let tied = points
                .iter()
                .enumerate()
                .any(|(j, p)| j != winner.0 && p.min_dist(q) == winner.1);
            if !tied {
                prop_assert!(
                    nz.contains(&winner.0),
                    "instantiation NN {} (d={}) missing from NN!=0 {:?}",
                    winner.0, winner.1, nz
                );
            }
        }
    }

    /// Batch and sequential conformance agree: the batch engine inherits
    /// every bound above because its outputs are bit-identical.
    #[test]
    fn batch_quantify_inherits_epsilon_bound(
        seed in 0u64..100_000,
    ) {
        let idx = PnnIndex::new(random_discrete_instance(8, 2, seed));
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
        let qs: Vec<Point> = (0..16)
            .map(|_| Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0)))
            .collect();
        let (approx, _) = idx.quantify_batch(&qs);
        let (exact, _) = idx.quantify_exact_batch(&qs);
        let eps = idx.config().epsilon;
        for (pi, ex) in approx.iter().zip(&exact) {
            for (a, e) in pi.iter().zip(ex) {
                prop_assert!((a - e).abs() <= eps + 1e-9);
            }
        }
    }
}

#[test]
fn quantify_fresh_respects_round_budget_scaling() {
    // Halving eps needs ~4x the rounds: sanity-check the config plumbing the
    // batch layer documents for choosing `rounds`.
    let s1 = MonteCarloIndex::samples_for_queries(0.1, 0.01, 10, 1);
    let s2 = MonteCarloIndex::samples_for_queries(0.05, 0.01, 10, 1);
    assert!(s2 >= 3 * s1);
    // And the PnnConfig default round cap stays above the per-query need
    // for the default epsilon.
    let cfg = PnnConfig::default();
    assert!(
        MonteCarloIndex::samples_for_queries(cfg.epsilon, cfg.delta, 100, 1) <= cfg.max_mc_rounds
    );
}
