//! Differential guard for the batched SoA distance kernels: every batched
//! read path must be **bit-identical** to its retained scalar oracle —
//! same ids, same `f64` bits, same visit sequences, same early-exit
//! flags — across random corpora, adversarial geometry (coincident,
//! collinear, denormal, near-overflow coordinates), corpora surviving
//! dynamic churn, and concurrent query threads.
//!
//! Corpora, signatures, and the churn driver live in `unn-testkit`
//! (shared with `tests/dynamic_oracle.rs` and
//! `tests/precision_refinement.rs`); this file owns only the
//! batched-vs-scalar assertions.
//!
//! The one deliberate exception is [`KdTree::prune_with_cap`], whose
//! batched walk is allowed to skip contract-dead points: there the
//! *fold outputs* (`delta_min`, `prune_bound`, `cap_for`) must match the
//! visit-every-slot scalar walk bit-for-bit, per the exactness contract
//! documented on the method.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::dynamic::DynamicPnnConfig;
use unn::PnnConfig;
use unn_distr::{Uncertain, UncertainPoint};
use unn_geom::{Disk, Point};
use unn_nonzero::DiskNonzeroIndex;
use unn_quantify::{McBackend, MonteCarloIndex};
use unn_spatial::{KdConfig, KdForest, KdTree};
use unn_testkit::sig::{configs, forest_signature, kd_signature};
use unn_testkit::{churn, corpus};

/// Asserts batched == scalar for every config over one corpus. Returns
/// the batched signature of the last config for reuse (thread tests).
fn check_corpus(pts: &[Point], seed: u64) -> Vec<u64> {
    let (lo, hi) = corpus::aux_offsets(pts.len(), seed);
    let boxes = corpus::support_boxes(pts, &lo);
    let queries = corpus::queries_for(5, pts, seed);
    let mut last = Vec::new();
    for cfg in configs() {
        let tree = KdTree::with_aux_bounds_config(pts, &lo, &hi, cfg);
        let batched = kd_signature(&tree, pts, &lo, &boxes, &queries, false);
        let scalar = kd_signature(&tree, pts, &lo, &boxes, &queries, true);
        assert_eq!(
            batched,
            scalar,
            "batched/scalar divergence on {} points under {:?}",
            pts.len(),
            cfg
        );
        last = batched;
    }
    last
}

fn check_forest(pts: &[Point], seed: u64) {
    let mut forest = KdForest::new();
    // Uneven rounds, including an empty one: partial lane batches at
    // every round boundary.
    forest.push_round(&pts[..pts.len() / 3]);
    forest.push_round(&[]);
    forest.push_round(&pts[pts.len() / 3..]);
    forest.push_round(pts);
    let queries = corpus::queries_for(4, pts, seed ^ 0xF0);
    assert_eq!(
        forest_signature(&forest, &queries, false),
        forest_signature(&forest, &queries, true),
        "forest batched/scalar divergence on {} points",
        pts.len()
    );
}

/// Full quantify fast path (`prune_radius` + seeded arena fold + winners
/// decode) against its scalar twin: membership probabilities bit-equal.
fn check_montecarlo(points: &[Uncertain], seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4D43);
    let index = MonteCarloIndex::build(points, 64, McBackend::KdTree, &mut rng);
    let queries = corpus::query_points(6, seed ^ 0x9, 25.0);
    let (mut pi, mut pi_scalar) = (Vec::new(), Vec::new());
    for &q in &queries {
        let pr = index.prune_radius(q);
        let pr_scalar = index.prune_radius_scalar(q);
        assert_eq!(pr.to_bits(), pr_scalar.to_bits(), "prune_radius diverged");
        index.query_into(q, &mut pi);
        index.query_into_scalar(q, &mut pi_scalar);
        let a: Vec<u64> = pi.iter().map(|p| p.to_bits()).collect();
        let b: Vec<u64> = pi_scalar.iter().map(|p| p.to_bits()).collect();
        assert_eq!(a, b, "query_into diverged from scalar at {q:?}");
    }
}

// ---------------------------------------------------------------------------
// Random corpora (proptest)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kd_tree_batched_matches_scalar(n in 1usize..140, seed in 0u64..1_000_000) {
        check_corpus(&corpus::points(n, seed), seed);
    }

    #[test]
    fn forest_batched_matches_scalar(n in 2usize..100, seed in 0u64..1_000_000) {
        check_forest(&corpus::points(n, seed), seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn montecarlo_batched_matches_scalar(n in 1usize..16, seed in 0u64..1_000_000) {
        check_montecarlo(&corpus::uniform_disks(n, seed ^ 0xD15C, 0.3, 2.5), seed);
    }

    #[test]
    fn disk_nonzero_batched_matches_scalar(n in 1usize..24, seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let disks: Vec<Disk> = (0..n)
            .map(|_| {
                Disk::new(
                    Point::new(rng.random_range(-15.0..15.0), rng.random_range(-15.0..15.0)),
                    rng.random_range(0.1..4.0),
                )
            })
            .collect();
        let index = DiskNonzeroIndex::new(&disks);
        let (mut out, mut out_scalar) = (Vec::new(), Vec::new());
        for _ in 0..8 {
            let q = Point::new(rng.random_range(-18.0..18.0), rng.random_range(-18.0..18.0));
            index.query_into(q, &mut out);
            index.query_into_scalar(q, &mut out_scalar);
            prop_assert_eq!(&out, &out_scalar, "NN≠0 set diverged at {:?}", q);
        }
    }
}

// ---------------------------------------------------------------------------
// Churned-dynamic corpora: batched kernels over point sets that survived
// an arbitrary insert/remove interleaving (the layouts a static build
// never produces: tombstone-shaped id gaps, re-inserted duplicates).
// ---------------------------------------------------------------------------

fn churn_config() -> DynamicPnnConfig {
    DynamicPnnConfig {
        base: PnnConfig {
            epsilon: 0.05,
            delta: 0.01,
            ..PnnConfig::default()
        },
        mc_rounds: 96,
        ..DynamicPnnConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn churned_corpus_batched_matches_scalar(
        initial in 3usize..10,
        ops in proptest::collection::vec((proptest::bool::ANY, 0u64..1_000_000), 4..24),
        seed in 0u64..10_000,
    ) {
        let survivors = churn::survivors(initial, &ops, seed, churn_config());
        if survivors.is_empty() {
            return Ok(());
        }
        // Spatial kernels over the survivors' support-box centers…
        let centers: Vec<Point> = survivors.iter().map(|u| u.support_bbox().center()).collect();
        check_corpus(&centers, seed ^ 0xC0);
        // …and the full quantify pipeline over the survivors themselves.
        check_montecarlo(&survivors, seed ^ 0xC1);
    }
}

// ---------------------------------------------------------------------------
// Adversarial geometry
// ---------------------------------------------------------------------------

#[test]
fn adversarial_geometry_batched_matches_scalar() {
    for (name, pts) in corpus::adversarial() {
        // Zero offsets everywhere: exact ties in every adjusted kernel,
        // including the prune_with_cap tie-at-the-minimum contract case
        // on the coincident corpus.
        let zeros = vec![0.0; pts.len()];
        let boxes = corpus::support_boxes(&pts, &zeros);
        let mut queries = vec![
            pts[0],
            pts[pts.len() - 1],
            Point::new(0.0, 0.0),
            Point::new(1e-308, -5e-324),
            Point::new(7.25, -7.25),
        ];
        queries.push(Point::new(1e308, 1e307));
        for cfg in configs() {
            let tree = KdTree::with_aux_bounds_config(&pts, &zeros, &zeros, cfg);
            assert_eq!(
                kd_signature(&tree, &pts, &zeros, &boxes, &queries, false),
                kd_signature(&tree, &pts, &zeros, &boxes, &queries, true),
                "batched/scalar divergence on adversarial corpus `{name}` under {cfg:?}"
            );
        }
        // And once more with nontrivial asymmetric offsets.
        let (lo, hi) = corpus::aux_offsets(pts.len(), 0x5A5A);
        let tree = KdTree::with_aux_bounds_config(&pts, &lo, &hi, KdConfig::scan_heavy());
        let boxes = corpus::support_boxes(&pts, &lo);
        assert_eq!(
            kd_signature(&tree, &pts, &lo, &boxes, &queries, false),
            kd_signature(&tree, &pts, &lo, &boxes, &queries, true),
            "batched/scalar divergence on weighted adversarial corpus `{name}`"
        );
        check_forest(&pts, 0xAD);
    }
}

// ---------------------------------------------------------------------------
// Thread determinism: the kernels hold no mutable state, so concurrent
// readers at any parallelism must reproduce the single-thread signature
// bit-for-bit, batched and scalar alike.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_queries_are_bit_identical() {
    let pts = corpus::points(300, 0xBEEF);
    let (lo, hi) = corpus::aux_offsets(pts.len(), 0xBEEF);
    let boxes = corpus::support_boxes(&pts, &lo);
    let queries = corpus::queries_for(6, &pts, 0xBEEF);
    let tree = KdTree::with_aux_bounds_config(&pts, &lo, &hi, KdConfig::scan_heavy());
    let reference = kd_signature(&tree, &pts, &lo, &boxes, &queries, false);
    let reference_scalar = kd_signature(&tree, &pts, &lo, &boxes, &queries, true);
    assert_eq!(reference, reference_scalar);
    for threads in [1usize, 2, 8] {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        (
                            kd_signature(&tree, &pts, &lo, &boxes, &queries, false),
                            kd_signature(&tree, &pts, &lo, &boxes, &queries, true),
                        )
                    })
                })
                .collect();
            for h in handles {
                let (batched, scalar) = h.join().expect("query thread panicked");
                assert_eq!(
                    batched, reference,
                    "batched signature diverged across threads"
                );
                assert_eq!(
                    scalar, reference,
                    "scalar signature diverged across threads"
                );
            }
        });
    }
}
