//! Differential guard for the batched SoA distance kernels: every batched
//! read path must be **bit-identical** to its retained scalar oracle —
//! same ids, same `f64` bits, same visit sequences, same early-exit
//! flags — across random corpora, adversarial geometry (coincident,
//! collinear, denormal, near-overflow coordinates), corpora surviving
//! dynamic churn, and concurrent query threads.
//!
//! The one deliberate exception is [`KdTree::prune_with_cap`], whose
//! batched walk is allowed to skip contract-dead points: there the
//! *fold outputs* (`delta_min`, `prune_bound`, `cap_for`) must match the
//! visit-every-slot scalar walk bit-for-bit, per the exactness contract
//! documented on the method.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::dynamic::{DynamicPnnConfig, DynamicPnnIndex, PointId};
use unn::PnnConfig;
use unn_distr::{Uncertain, UncertainPoint};
use unn_geom::{Aabb, AabbSoA, Disk, Point};
use unn_nonzero::{DeltaCompose, DiskNonzeroIndex};
use unn_quantify::{McBackend, MonteCarloIndex};
use unn_spatial::{KdConfig, KdForest, KdTree, Neighbor};

/// Layout knobs under test: the shipped defaults, the scan-heavy arena
/// profile, and two degenerate shapes (single-point leaves with a real
/// tree descent, and mid-size leaves with a brute-force crossover) that
/// exercise partial lane batches and the flat-scan path.
fn configs() -> [KdConfig; 4] {
    [
        KdConfig::default(),
        KdConfig::scan_heavy(),
        KdConfig {
            leaf_size: 1,
            brute_force_below: 0,
        },
        KdConfig {
            leaf_size: 5,
            brute_force_below: 40,
        },
    ]
}

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    for _ in 0..n {
        // One in four points duplicates an earlier one: ties in distance
        // and id order are where batched/scalar divergence would hide.
        if !pts.is_empty() && rng.random_range(0u32..4) == 0 {
            let j = rng.random_range(0u64..pts.len() as u64) as usize;
            pts.push(pts[j]);
        } else {
            pts.push(Point::new(
                rng.random_range(-50.0..50.0),
                rng.random_range(-50.0..50.0),
            ));
        }
    }
    pts
}

fn random_queries(m: usize, pts: &[Point], seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let mut qs: Vec<Point> = (0..m)
        .map(|_| Point::new(rng.random_range(-60.0..60.0), rng.random_range(-60.0..60.0)))
        .collect();
    // Query *at* a stored point: exact-zero distances and closed-ball
    // boundary hits.
    qs.push(pts[pts.len() / 2]);
    qs
}

/// Non-negative per-point offsets: `lo` feeds the min-side aux bounds
/// (weighted kernels, prune folds), `hi >= lo` the max side
/// (`report_ball_below` trees).
fn random_aux(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA07);
    let lo: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..3.0)).collect();
    let hi: Vec<f64> = lo.iter().map(|&l| l + rng.random_range(0.0..3.0)).collect();
    (lo, hi)
}

/// Per-point support boxes for the batched δ/Δ box kernel: the point
/// inflated by its `lo` offset (any finite non-negative halfwidth works;
/// tying it to `lo` keeps the corpus deterministic).
fn support_boxes(pts: &[Point], lo: &[f64]) -> AabbSoA {
    let boxes: Vec<Aabb> = pts
        .iter()
        .zip(lo)
        .map(|(p, &w)| Aabb::new(Point::new(p.x - w, p.y - w), Point::new(p.x + w, p.y + w)))
        .collect();
    AabbSoA::from_boxes(&boxes)
}

/// Ball radii / report thresholds spanning the interesting regimes:
/// empty-or-boundary (0), half the corpus (median distance), everything
/// (max distance — a closed-ball boundary hit by construction).
fn radii(pts: &[Point], q: Point) -> [f64; 3] {
    let mut ds: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
    ds.sort_by(f64::total_cmp);
    [0.0, ds[ds.len() / 2], ds[ds.len() - 1]]
}

fn push_neighbor(sig: &mut Vec<u64>, n: Option<Neighbor>) {
    match n {
        Some(n) => {
            sig.push(1);
            sig.push(n.id as u64);
            sig.push(n.dist.to_bits());
        }
        None => sig.push(0),
    }
}

fn push_pair(sig: &mut Vec<u64>, v: Option<(usize, f64)>) {
    match v {
        Some((i, d)) => {
            sig.push(1);
            sig.push(i as u64);
            sig.push(d.to_bits());
        }
        None => sig.push(0),
    }
}

/// Runs the full read-path battery against one tree and serializes every
/// observable output — ids, distance bits, visit sequences, completion
/// flags, fold outputs — into a flat word stream. Two signatures are
/// equal iff the two paths were bit-identical on every kernel.
fn kd_signature(
    tree: &KdTree,
    pts: &[Point],
    lo: &[f64],
    boxes: &AabbSoA,
    queries: &[Point],
    scalar: bool,
) -> Vec<u64> {
    let mut sig = Vec::new();
    for &q in queries {
        for init in [f64::INFINITY, 1.5] {
            let n = if scalar {
                tree.nearest_within_scalar(q, init)
            } else {
                tree.nearest_within(q, init)
            };
            push_neighbor(&mut sig, n);
        }
        let mut out: Vec<Neighbor> = Vec::new();
        for m in [1usize, 4, 33] {
            out.clear();
            if scalar {
                tree.m_nearest_into_scalar(q, m, &mut out);
            } else {
                tree.m_nearest_into(q, m, &mut out);
            }
            sig.push(out.len() as u64);
            for n in &out {
                sig.push(n.id as u64);
                sig.push(n.dist.to_bits());
            }
        }
        for r in radii(pts, q) {
            {
                let visit = &mut |i: usize, d: f64| {
                    sig.push(i as u64);
                    sig.push(d.to_bits());
                };
                if scalar {
                    tree.in_disk_scalar(q, r, visit);
                } else {
                    tree.in_disk(q, r, visit);
                }
            }
            sig.push(u64::MAX); // sequence terminator
            for cap in [0usize, 1, 5, usize::MAX] {
                let complete = {
                    let visit = &mut |i: usize, d: f64| {
                        sig.push(i as u64);
                        sig.push(d.to_bits());
                    };
                    if scalar {
                        tree.in_disk_capped_scalar(q, r, cap, visit)
                    } else {
                        tree.in_disk_capped(q, r, cap, visit)
                    }
                };
                sig.push(u64::MAX);
                sig.push(complete as u64);
            }
            {
                let visit = &mut |i: usize, d: f64| {
                    sig.push(i as u64);
                    sig.push(d.to_bits());
                };
                if scalar {
                    tree.report_ball_below_scalar(q, r, visit);
                } else {
                    tree.report_ball_below(q, r, visit);
                }
            }
            sig.push(u64::MAX);
        }
        for init in [f64::INFINITY, 2.0] {
            let v = if scalar {
                tree.min_adjusted_weighted_from_scalar(q, init)
            } else {
                tree.min_adjusted_weighted_from(q, init)
            };
            push_pair(&mut sig, v);
        }
        let two = if scalar {
            tree.min_two_adjusted_weighted_scalar(q)
        } else {
            tree.min_two_adjusted_weighted(q)
        };
        match two {
            Some((i, a, b)) => {
                sig.push(1);
                sig.push(i as u64);
                sig.push(a.to_bits());
                sig.push(b.to_bits());
            }
            None => sig.push(0),
        }
        let bx = if scalar {
            tree.min_adjusted_boxes_scalar(q, boxes)
        } else {
            tree.min_adjusted_boxes(q, boxes)
        };
        push_pair(&mut sig, bx);
        // prune_with_cap: the batched walk may visit fewer points, so only
        // the fold's *outputs* are in the signature — never visit counts.
        // Two fold starts: the canonical fresh fold under an infinite cap,
        // and a pre-seeded fold whose own prune_bound is the entry cap
        // (the shared-bound idiom from the dynamic read path).
        for preseed in [false, true] {
            let mut fold = DeltaCompose::new();
            if preseed {
                let r = radii(pts, q);
                fold.observe(r[1] + 1.0, u64::MAX);
                fold.observe(r[2] + 1.0, u64::MAX - 1);
            }
            let cap0 = fold.prune_bound();
            let visit = &mut |i: usize| {
                fold.observe(pts[i].dist(q) + lo[i], i as u64);
                fold.prune_bound()
            };
            let fin = if scalar {
                tree.prune_with_cap_scalar(q, cap0, visit)
            } else {
                tree.prune_with_cap(q, cap0, visit)
            };
            sig.push(fin.to_bits());
            sig.push(fold.delta_min().to_bits());
            sig.push(fold.prune_bound().to_bits());
            for id in 0..4u64 {
                sig.push(fold.cap_for(id).to_bits());
            }
        }
    }
    sig
}

/// Asserts batched == scalar for every config over one corpus. Returns
/// the batched signature of the last config for reuse (thread tests).
fn check_corpus(pts: &[Point], seed: u64) -> Vec<u64> {
    let (lo, hi) = random_aux(pts.len(), seed);
    let boxes = support_boxes(pts, &lo);
    let queries = random_queries(5, pts, seed);
    let mut last = Vec::new();
    for cfg in configs() {
        let tree = KdTree::with_aux_bounds_config(pts, &lo, &hi, cfg);
        let batched = kd_signature(&tree, pts, &lo, &boxes, &queries, false);
        let scalar = kd_signature(&tree, pts, &lo, &boxes, &queries, true);
        assert_eq!(
            batched,
            scalar,
            "batched/scalar divergence on {} points under {:?}",
            pts.len(),
            cfg
        );
        last = batched;
    }
    last
}

fn forest_signature(forest: &KdForest, queries: &[Point], scalar: bool) -> Vec<u64> {
    let mut sig = Vec::new();
    let mut out: Vec<Neighbor> = Vec::new();
    for round in 0..forest.rounds() {
        for &q in queries {
            for init in [f64::INFINITY, 2.0] {
                let n = if scalar {
                    forest.nearest_within_scalar(round, q, init)
                } else {
                    forest.nearest_within(round, q, init)
                };
                push_neighbor(&mut sig, n);
            }
            for m in [1usize, 3] {
                out.clear();
                if scalar {
                    forest.m_nearest_into_scalar(round, q, m, &mut out);
                } else {
                    forest.m_nearest_into(round, q, m, &mut out);
                }
                sig.push(out.len() as u64);
                for n in &out {
                    sig.push(n.id as u64);
                    sig.push(n.dist.to_bits());
                }
            }
        }
    }
    sig
}

fn check_forest(pts: &[Point], seed: u64) {
    let mut forest = KdForest::new();
    // Uneven rounds, including an empty one: partial lane batches at
    // every round boundary.
    forest.push_round(&pts[..pts.len() / 3]);
    forest.push_round(&[]);
    forest.push_round(&pts[pts.len() / 3..]);
    forest.push_round(pts);
    let queries = random_queries(4, pts, seed ^ 0xF0);
    assert_eq!(
        forest_signature(&forest, &queries, false),
        forest_signature(&forest, &queries, true),
        "forest batched/scalar divergence on {} points",
        pts.len()
    );
}

fn random_uncertain(n: usize, seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD15C);
    (0..n)
        .map(|_| {
            Uncertain::uniform_disk(
                Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0)),
                rng.random_range(0.3..2.5),
            )
        })
        .collect()
}

/// Full quantify fast path (`prune_radius` + seeded arena fold + winners
/// decode) against its scalar twin: membership probabilities bit-equal.
fn check_montecarlo(points: &[Uncertain], seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4D43);
    let index = MonteCarloIndex::build(points, 64, McBackend::KdTree, &mut rng);
    let queries = {
        let mut qrng = SmallRng::seed_from_u64(seed ^ 0x9);
        (0..6)
            .map(|_| {
                Point::new(
                    qrng.random_range(-25.0..25.0),
                    qrng.random_range(-25.0..25.0),
                )
            })
            .collect::<Vec<_>>()
    };
    let (mut pi, mut pi_scalar) = (Vec::new(), Vec::new());
    for &q in &queries {
        let pr = index.prune_radius(q);
        let pr_scalar = index.prune_radius_scalar(q);
        assert_eq!(pr.to_bits(), pr_scalar.to_bits(), "prune_radius diverged");
        index.query_into(q, &mut pi);
        index.query_into_scalar(q, &mut pi_scalar);
        let a: Vec<u64> = pi.iter().map(|p| p.to_bits()).collect();
        let b: Vec<u64> = pi_scalar.iter().map(|p| p.to_bits()).collect();
        assert_eq!(a, b, "query_into diverged from scalar at {q:?}");
    }
}

// ---------------------------------------------------------------------------
// Random corpora (proptest)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kd_tree_batched_matches_scalar(n in 1usize..140, seed in 0u64..1_000_000) {
        check_corpus(&random_points(n, seed), seed);
    }

    #[test]
    fn forest_batched_matches_scalar(n in 2usize..100, seed in 0u64..1_000_000) {
        check_forest(&random_points(n, seed), seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn montecarlo_batched_matches_scalar(n in 1usize..16, seed in 0u64..1_000_000) {
        check_montecarlo(&random_uncertain(n, seed), seed);
    }

    #[test]
    fn disk_nonzero_batched_matches_scalar(n in 1usize..24, seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let disks: Vec<Disk> = (0..n)
            .map(|_| {
                Disk::new(
                    Point::new(rng.random_range(-15.0..15.0), rng.random_range(-15.0..15.0)),
                    rng.random_range(0.1..4.0),
                )
            })
            .collect();
        let index = DiskNonzeroIndex::new(&disks);
        let (mut out, mut out_scalar) = (Vec::new(), Vec::new());
        for _ in 0..8 {
            let q = Point::new(rng.random_range(-18.0..18.0), rng.random_range(-18.0..18.0));
            index.query_into(q, &mut out);
            index.query_into_scalar(q, &mut out_scalar);
            prop_assert_eq!(&out, &out_scalar, "NN≠0 set diverged at {:?}", q);
        }
    }
}

// ---------------------------------------------------------------------------
// Churned-dynamic corpora: batched kernels over point sets that survived
// an arbitrary insert/remove interleaving (the layouts a static build
// never produces: tombstone-shaped id gaps, re-inserted duplicates).
// ---------------------------------------------------------------------------

fn churn_survivors(initial: usize, ops: &[(bool, u64)], seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let config = DynamicPnnConfig {
        base: PnnConfig {
            epsilon: 0.05,
            delta: 0.01,
            ..PnnConfig::default()
        },
        mc_rounds: 96,
        ..DynamicPnnConfig::default()
    };
    let mut index =
        DynamicPnnIndex::with_config(config).unwrap_or_else(|e| panic!("config rejected: {e}"));
    let mut mirror: BTreeMap<PointId, Uncertain> = BTreeMap::new();
    let fresh = |rng: &mut SmallRng| {
        Uncertain::uniform_disk(
            Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0)),
            rng.random_range(0.3..2.5),
        )
    };
    for _ in 0..initial {
        let p = fresh(&mut rng);
        let id = index.insert(p.clone());
        mirror.insert(id, p);
    }
    for &(is_insert, raw) in ops {
        if is_insert {
            let p = fresh(&mut rng);
            let id = index.insert(p.clone());
            mirror.insert(id, p);
        } else if !mirror.is_empty() {
            let keys: Vec<PointId> = mirror.keys().copied().collect();
            let victim = keys[(raw as usize) % keys.len()];
            assert!(index.remove(victim), "mirror says {victim} is live");
            mirror.remove(&victim);
        }
    }
    mirror.into_values().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn churned_corpus_batched_matches_scalar(
        initial in 3usize..10,
        ops in proptest::collection::vec((proptest::bool::ANY, 0u64..1_000_000), 4..24),
        seed in 0u64..10_000,
    ) {
        let survivors = churn_survivors(initial, &ops, seed);
        if survivors.is_empty() {
            return Ok(());
        }
        // Spatial kernels over the survivors' support-box centers…
        let centers: Vec<Point> = survivors.iter().map(|u| u.support_bbox().center()).collect();
        check_corpus(&centers, seed ^ 0xC0);
        // …and the full quantify pipeline over the survivors themselves.
        check_montecarlo(&survivors, seed ^ 0xC1);
    }
}

// ---------------------------------------------------------------------------
// Adversarial geometry
// ---------------------------------------------------------------------------

fn adversarial_corpora() -> Vec<(&'static str, Vec<Point>)> {
    let p = Point::new;
    let mut coincident = vec![p(1.5, -2.5); 19];
    coincident.extend([p(1.5, -2.5000001), p(-4.0, 8.0), p(0.0, 0.0)]);
    let collinear: Vec<Point> = (0..40).map(|i| p(-1e6 + i as f64 * 3.7e4, 5.0)).collect();
    let tiny = [0.0, 5e-324, -5e-324, 1e-308, -1e-308, 2.5e-308, 4.9e-300];
    let mut denormal = Vec::new();
    for &x in &tiny {
        for &y in &tiny {
            denormal.push(p(x, y));
        }
    }
    let huge = vec![
        p(1e308, 1e308),
        p(-1e308, 1e308),
        p(1e308, -1e308),
        p(-1e308, -1e308),
        p(1e308, 0.0),
        p(0.0, -1e308),
        p(0.0, 0.0),
        p(1.0, 1.0),
        p(1e154, -1e154),
    ];
    vec![
        ("coincident", coincident),
        ("collinear", collinear),
        ("denormal", denormal),
        ("huge", huge),
    ]
}

#[test]
fn adversarial_geometry_batched_matches_scalar() {
    for (name, pts) in adversarial_corpora() {
        // Zero offsets everywhere: exact ties in every adjusted kernel,
        // including the prune_with_cap tie-at-the-minimum contract case
        // on the coincident corpus.
        let zeros = vec![0.0; pts.len()];
        let boxes = support_boxes(&pts, &zeros);
        let mut queries = vec![
            pts[0],
            pts[pts.len() - 1],
            Point::new(0.0, 0.0),
            Point::new(1e-308, -5e-324),
            Point::new(7.25, -7.25),
        ];
        queries.push(Point::new(1e308, 1e307));
        for cfg in configs() {
            let tree = KdTree::with_aux_bounds_config(&pts, &zeros, &zeros, cfg);
            assert_eq!(
                kd_signature(&tree, &pts, &zeros, &boxes, &queries, false),
                kd_signature(&tree, &pts, &zeros, &boxes, &queries, true),
                "batched/scalar divergence on adversarial corpus `{name}` under {cfg:?}"
            );
        }
        // And once more with nontrivial asymmetric offsets.
        let (lo, hi) = random_aux(pts.len(), 0x5A5A);
        let tree = KdTree::with_aux_bounds_config(&pts, &lo, &hi, KdConfig::scan_heavy());
        let boxes = support_boxes(&pts, &lo);
        assert_eq!(
            kd_signature(&tree, &pts, &lo, &boxes, &queries, false),
            kd_signature(&tree, &pts, &lo, &boxes, &queries, true),
            "batched/scalar divergence on weighted adversarial corpus `{name}`"
        );
        check_forest(&pts, 0xAD);
    }
}

// ---------------------------------------------------------------------------
// Thread determinism: the kernels hold no mutable state, so concurrent
// readers at any parallelism must reproduce the single-thread signature
// bit-for-bit, batched and scalar alike.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_queries_are_bit_identical() {
    let pts = random_points(300, 0xBEEF);
    let (lo, hi) = random_aux(pts.len(), 0xBEEF);
    let boxes = support_boxes(&pts, &lo);
    let queries = random_queries(6, &pts, 0xBEEF);
    let tree = KdTree::with_aux_bounds_config(&pts, &lo, &hi, KdConfig::scan_heavy());
    let reference = kd_signature(&tree, &pts, &lo, &boxes, &queries, false);
    let reference_scalar = kd_signature(&tree, &pts, &lo, &boxes, &queries, true);
    assert_eq!(reference, reference_scalar);
    for threads in [1usize, 2, 8] {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        (
                            kd_signature(&tree, &pts, &lo, &boxes, &queries, false),
                            kd_signature(&tree, &pts, &lo, &boxes, &queries, true),
                        )
                    })
                })
                .collect();
            for h in handles {
                let (batched, scalar) = h.join().expect("query thread panicked");
                assert_eq!(
                    batched, reference,
                    "batched signature diverged across threads"
                );
                assert_eq!(
                    scalar, reference,
                    "scalar signature diverged across threads"
                );
            }
        });
    }
}
