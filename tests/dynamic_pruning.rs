//! Shared-bound pruning oracle: the pruned dynamic read path must be
//! **bit-identical** to its unpruned references for every churn history and
//! every compaction policy.
//!
//! Three layers of equivalence are checked:
//!
//! 1. pruned `nn_nonzero` / `quantify` vs. the snapshot's retained
//!    *unpruned* linear folds (`nn_nonzero_unpruned` / `quantify_unpruned`)
//!    — same floats, same comparisons, only with the branch-and-bound caps
//!    threaded through;
//! 2. pruned `nn_nonzero` vs. a *fresh static* index on the surviving live
//!    set — Lemma 2.1 composes bit-for-bit across any block layout;
//! 3. pruned `quantify` vs. a *fresh dynamic rebuild* of the same
//!    `(id, point)` set — Monte-Carlo streams are id-keyed, so any block
//!    history must reproduce the estimate bit-for-bit.
//!
//! Adversarial geometry (all-overlapping supports where the cap never
//! prunes; one giant block plus a singleton) and batch runs at 1/2/8
//! threads ride along.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::batch::BatchOptions;
use unn::dynamic::{CompactionPolicy, DynamicPnnConfig, DynamicPnnIndex, PointId};
use unn::geom::Point;
use unn::{PnnConfig, PnnIndex, Uncertain};

const POLICIES: [CompactionPolicy; 3] = [
    CompactionPolicy::Logarithmic,
    CompactionPolicy::Tiered { max_blocks: 3 },
    CompactionPolicy::MergeToOne,
];

fn dynamic_config(policy: CompactionPolicy) -> DynamicPnnConfig {
    DynamicPnnConfig {
        base: PnnConfig {
            epsilon: 0.05,
            delta: 0.01,
            ..PnnConfig::default()
        },
        mc_rounds: 256,
        policy,
        ..DynamicPnnConfig::default()
    }
}

fn static_config() -> PnnConfig {
    PnnConfig {
        epsilon: 0.05,
        delta: 0.01,
        max_mc_rounds: 1024,
        ..PnnConfig::default()
    }
}

fn random_disk(rng: &mut SmallRng) -> Uncertain {
    Uncertain::uniform_disk(
        Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0)),
        rng.random_range(0.3..2.5),
    )
}

fn queries(m: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..m)
        .map(|_| Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0)))
        .collect()
}

/// Applies one churn history under `policy`; returns the index plus the
/// surviving `(id, point)` mirror.
fn churn(
    policy: CompactionPolicy,
    initial: usize,
    ops: &[(bool, u64)],
    seed: u64,
) -> (DynamicPnnIndex, BTreeMap<PointId, Uncertain>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut index = DynamicPnnIndex::with_config(dynamic_config(policy))
        .unwrap_or_else(|e| panic!("config rejected: {e}"));
    let mut mirror = BTreeMap::new();
    let boot: Vec<Uncertain> = (0..initial).map(|_| random_disk(&mut rng)).collect();
    for (id, p) in index.bulk_insert(boot.clone()).into_iter().zip(boot) {
        mirror.insert(id, p);
    }
    for &(is_insert, raw) in ops {
        if is_insert {
            let p = random_disk(&mut rng);
            let id = index.insert(p.clone());
            mirror.insert(id, p);
        } else if !mirror.is_empty() {
            let keys: Vec<PointId> = mirror.keys().copied().collect();
            let victim = keys[(raw as usize) % keys.len()];
            assert!(index.remove(victim), "mirror says {victim} is live");
            mirror.remove(&victim);
        }
    }
    (index, mirror)
}

/// The full three-way equivalence check on one snapshot.
fn assert_pruning_equivalence(
    index: &DynamicPnnIndex,
    mirror: &BTreeMap<PointId, Uncertain>,
    qs: &[Point],
    tag: &str,
) {
    let snap = index.snapshot();
    let live_ids: Vec<PointId> = mirror.keys().copied().collect();
    assert_eq!(snap.live_ids(), &live_ids[..], "{tag}: live set diverged");

    // (3)'s reference: same (id, point) set rebuilt as one block.
    let mut rebuilt = DynamicPnnIndex::with_config(index.config().clone())
        .unwrap_or_else(|e| panic!("{tag}: rebuild config: {e}"));
    for (&id, p) in mirror {
        rebuilt
            .insert_with_id(id, p.clone())
            .unwrap_or_else(|e| panic!("{tag}: rebuild id {id}: {e}"));
    }
    let resnap = rebuilt.snapshot();
    let static_index = PnnIndex::build(mirror.values().cloned().collect(), static_config());

    for &q in qs {
        let pruned = snap.nn_nonzero(q);
        assert_eq!(
            pruned,
            snap.nn_nonzero_unpruned(q),
            "{tag}: pruned vs unpruned NN!=0 diverged at {q:?}"
        );
        let static_ids: Vec<PointId> = static_index
            .nn_nonzero(q)
            .into_iter()
            .map(|i| live_ids[i])
            .collect();
        assert_eq!(
            pruned, static_ids,
            "{tag}: dynamic vs fresh static NN!=0 diverged at {q:?}"
        );

        let (pi, _) = snap.quantify(q);
        assert_eq!(
            pi,
            snap.quantify_unpruned(q),
            "{tag}: pruned vs unpruned quantify diverged at {q:?}"
        );
        assert_eq!(
            pi,
            resnap.quantify(q).0,
            "{tag}: quantify not invariant to block history at {q:?}"
        );
        if !pi.is_empty() {
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{tag}: pi sums to {sum}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random churn histories, replayed under every compaction policy.
    #[test]
    fn pruned_reads_are_bit_identical_under_churn(
        initial in 3usize..12,
        ops in proptest::collection::vec((proptest::bool::ANY, 0u64..1_000_000), 0..20),
        seed in 0u64..10_000,
    ) {
        for policy in POLICIES {
            let (index, mirror) = churn(policy, initial, &ops, seed);
            prop_assert_eq!(index.len(), mirror.len());
            assert_pruning_equivalence(
                &index,
                &mirror,
                &queries(5, seed ^ 0xBEEF),
                &format!("{policy:?}"),
            );
        }
    }
}

/// Adversarial case 1: every support overlaps every other, so the shared
/// cap never rules a block out — the pruned path must degrade gracefully
/// to the full fold and still agree everywhere.
#[test]
fn all_overlapping_supports_never_prune_but_stay_identical() {
    let mut rng = SmallRng::seed_from_u64(4242);
    for policy in POLICIES {
        let mut index = DynamicPnnIndex::with_config(dynamic_config(policy))
            .unwrap_or_else(|e| panic!("config: {e}"));
        let mut mirror = BTreeMap::new();
        // Big concentric-ish disks: every pair of supports intersects, and
        // every query inside the cluster is inside every support.
        for _ in 0..14 {
            let p = Uncertain::uniform_disk(
                Point::new(rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)),
                rng.random_range(8.0..12.0),
            );
            let id = index.insert(p.clone());
            mirror.insert(id, p);
        }
        for victim in [3u64, 9] {
            assert!(index.remove(victim));
            mirror.remove(&victim);
        }
        let qs: Vec<Point> = (0..6)
            .map(|_| Point::new(rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)))
            .collect();
        // Inside the overlap region everyone has nonzero probability: the
        // answer itself must be the full live set.
        let snap = index.snapshot();
        let all: Vec<PointId> = mirror.keys().copied().collect();
        assert_eq!(snap.nn_nonzero(qs[0]), all, "{policy:?}: overlap answer");
        assert_pruning_equivalence(&index, &mirror, &qs, &format!("overlap/{policy:?}"));
    }
}

/// Adversarial case 2: one giant block plus a lone singleton — the layout
/// where a stale shared bound from the big block could starve or over-prune
/// the small one (and vice versa when the singleton is closest).
#[test]
fn giant_block_plus_singleton_layouts() {
    let mut rng = SmallRng::seed_from_u64(777);
    for policy in POLICIES {
        let mut index = DynamicPnnIndex::with_config(dynamic_config(policy))
            .unwrap_or_else(|e| panic!("config: {e}"));
        let mut mirror = BTreeMap::new();
        let boot: Vec<Uncertain> = (0..32).map(|_| random_disk(&mut rng)).collect();
        for (id, p) in index.bulk_insert(boot.clone()).into_iter().zip(boot) {
            mirror.insert(id, p);
        }
        // The singleton sits far outside the corpus: nearest by a mile for
        // queries near it, irrelevant for queries inside the corpus.
        let lone = Uncertain::uniform_disk(Point::new(400.0, 400.0), 0.5);
        let lone_id = index.insert(lone.clone());
        mirror.insert(lone_id, lone);

        let mut qs = queries(4, 778);
        qs.push(Point::new(399.0, 401.0)); // singleton dominates
        qs.push(Point::new(180.0, 180.0)); // in between: bounds are loose
        let snap = index.snapshot();
        assert_eq!(
            snap.nn_nonzero(Point::new(399.0, 401.0)),
            vec![lone_id],
            "{policy:?}: singleton must own its neighborhood"
        );
        assert_pruning_equivalence(&index, &mirror, &qs, &format!("giant+1/{policy:?}"));
    }
}

/// Batch runs of the pruned path must be bit-identical across 1/2/8
/// threads (and to the sequential loop).
#[test]
fn pruned_batches_deterministic_across_thread_counts() {
    for policy in POLICIES {
        let ops: Vec<(bool, u64)> = (0u64..18)
            .map(|i| (i % 3 != 2, i.wrapping_mul(0x9E37_79B9)))
            .collect();
        let (index, _) = churn(policy, 9, &ops, 55);
        let snap = index.snapshot();
        let qs = queries(24, 56);
        let seq_nn: Vec<Vec<PointId>> = qs.iter().map(|&q| snap.nn_nonzero(q)).collect();
        let seq_pi: Vec<Vec<f64>> = qs.iter().map(|&q| snap.quantify(q).0).collect();
        for t in [1usize, 2, 8] {
            let opts = BatchOptions::with_threads(t);
            assert_eq!(
                snap.nn_nonzero_batch_with(&qs, &opts),
                seq_nn,
                "{policy:?}: nn_nonzero batch diverged at {t} threads"
            );
            assert_eq!(
                snap.quantify_batch_with(&qs, &opts),
                seq_pi,
                "{policy:?}: quantify batch diverged at {t} threads"
            );
        }
    }
}
