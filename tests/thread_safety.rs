//! Thread-safety of the shared index: `PnnIndex` is `Send + Sync`
//! (compile-time assertion) and concurrent queries against one shared
//! instance return exactly what sequential queries return.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::distr::{DiscreteDistribution, TruncatedGaussian};
use unn::geom::Point;
use unn::{PnnIndex, Uncertain};

// Compile-time Send + Sync assertions for everything the batch layer
// shares across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PnnIndex>();
    assert_send_sync::<unn::PnnConfig>();
    assert_send_sync::<unn::BatchOptions>();
    assert_send_sync::<unn::nonzero::DiskNonzeroIndex>();
    assert_send_sync::<unn::nonzero::DiscreteNonzeroIndex>();
    assert_send_sync::<unn::quantify::MonteCarloIndex>();
    assert_send_sync::<unn::quantify::SpiralIndex>();
    assert_send_sync::<unn::spatial::PersistentSet>();
};

fn mixed_points(n: usize, seed: u64) -> Vec<Uncertain> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let c = Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0));
            match i % 3 {
                0 => Uncertain::uniform_disk(c, rng.random_range(0.5..2.0)),
                1 => Uncertain::Gaussian(TruncatedGaussian::with_sigmas(c, 0.5, 3.0)),
                _ => Uncertain::Discrete(
                    DiscreteDistribution::uniform(vec![
                        Point::new(c.x, c.y - 1.0),
                        Point::new(c.x, c.y + 1.0),
                    ])
                    .unwrap(),
                ),
            }
        })
        .collect()
}

fn queries(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0)))
        .collect()
}

type QueryTriple = (Vec<usize>, Vec<f64>, Option<(usize, f64)>);

#[test]
fn concurrent_queries_match_sequential() {
    let idx = Arc::new(PnnIndex::new(mixed_points(20, 600)));
    let qs = queries(200, 601);
    let seq: Vec<QueryTriple> = qs
        .iter()
        .map(|&q| (idx.nn_nonzero(q), idx.quantify(q).0, idx.expected_nn(q)))
        .collect();

    // 8 threads, each querying the full set against the shared index.
    let results: Vec<_> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                let idx = Arc::clone(&idx);
                let qs = &qs;
                scope.spawn(move || {
                    qs.iter()
                        .map(|&q| (idx.nn_nonzero(q), idx.quantify(q).0, idx.expected_nn(q)))
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect()
    });
    for (t, per_thread) in results.iter().enumerate() {
        assert_eq!(per_thread, &seq, "thread {t} diverged from sequential");
    }
}

#[test]
fn index_shared_by_reference_across_scoped_threads() {
    // No Arc needed: &PnnIndex is enough (Sync), exactly how the batch
    // engine borrows it.
    let idx = PnnIndex::new(mixed_points(15, 602));
    let qs = queries(64, 603);
    let seq: Vec<Vec<usize>> = qs.iter().map(|&q| idx.nn_nonzero(q)).collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let (idx, qs, seq) = (&idx, &qs, &seq);
            scope.spawn(move || {
                let got: Vec<Vec<usize>> = qs.iter().map(|&q| idx.nn_nonzero(q)).collect();
                assert_eq!(&got, seq);
            });
        }
    });
}
