//! Chaos suite for the sharded serving tier (`unn::serve`).
//!
//! Contracts under test, per DESIGN.md §9:
//!
//! * no injected fault ever escapes the dispatcher — panicking, slow, and
//!   NaN-poisoned shards surface as failed shards, never as a crash;
//! * healthy shards' answers are bit-identical to the fault-free run over
//!   the same healthy subset, at 1, 2, and 8 worker threads alike;
//! * circuit breakers trip after the documented number of consecutive
//!   failures, cool down on the injected clock, half-open, and recover;
//! * shedding is honest: every shed reply names its reason, and degraded
//!   answers carry the accuracy they actually certify.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use unn::geom::Point;
use unn::serve::{
    AdmissionConfig, BreakerConfig, BreakerState, ChaosShard, DispatchConfig, Dispatcher,
    EngineShard, FaultKind, Outcome, Reply, Request, RetryPolicy, ServeConfig, ShardBackend,
    ShardPolicy, ShardSet, ShardSetSnapshot, ShedReason,
};
use unn::Uncertain;
use unn_observe::{NullClock, VirtualClock};

fn serve_config() -> ServeConfig {
    ServeConfig {
        mc_rounds: 96,
        ..ServeConfig::default()
    }
}

fn build_set(n_shards: usize, n_points: usize) -> ShardSet {
    let mut set = ShardSet::new(n_shards, ShardPolicy::Hash, serve_config())
        .unwrap_or_else(|e| panic!("{e}"));
    for i in 0..n_points {
        set.insert(Uncertain::uniform_disk(
            Point::new((i % 8) as f64 * 2.2, (i / 8) as f64 * 2.2),
            0.35 + 0.04 * (i % 4) as f64,
        ));
    }
    set
}

fn requests() -> Vec<Request> {
    let mut reqs = Vec::new();
    for i in 0..12 {
        let q = Point::new(1.3 * i as f64 - 4.0, 0.9 * (i % 5) as f64);
        reqs.push(Request::NnNonzero(q));
        reqs.push(Request::Quantify(q));
    }
    reqs
}

/// A dispatcher over an arbitrary subset of the snapshot's shards, with no
/// exact view — the fault-free oracle for a run where the complement of
/// `keep` has failed.
fn subset_dispatcher(snap: &ShardSetSnapshot, keep: &[usize], cfg: DispatchConfig) -> Dispatcher {
    let clock = Arc::new(NullClock);
    let backends: Vec<Box<dyn ShardBackend>> = keep
        .iter()
        .map(|&k| {
            Box::new(EngineShard::new(snap.shards()[k].clone(), clock.clone()))
                as Box<dyn ShardBackend>
        })
        .collect();
    Dispatcher::new(backends, None, cfg, clock).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs `reqs` through a dispatcher whose shard 0 carries `fault`, at the
/// given thread count, and returns (replies, deterministic counters).
fn faulted_run(
    snap: &ShardSetSnapshot,
    fault: FaultKind,
    threads: Option<usize>,
    reqs: &[Request],
) -> (Vec<Reply>, unn_observe::ServeCounters) {
    let cfg = DispatchConfig {
        threads,
        call_timeout_nanos: 1_000_000,
        ..DispatchConfig::default()
    };
    let mut d =
        Dispatcher::for_snapshot(snap, cfg, Arc::new(NullClock)).unwrap_or_else(|e| panic!("{e}"));
    d.wrap_shard(0, |inner| Box::new(ChaosShard::new(inner, fault)));
    let replies = d.serve(reqs);
    (replies, d.metrics().deterministic())
}

/// The fault-free oracle run over only the healthy shards, on one thread.
fn healthy_oracle(snap: &ShardSetSnapshot, reqs: &[Request]) -> Vec<Reply> {
    let keep: Vec<usize> = (1..snap.shards().len()).collect();
    let cfg = DispatchConfig {
        threads: Some(1),
        ..DispatchConfig::default()
    };
    subset_dispatcher(snap, &keep, cfg).serve(reqs)
}

/// Asserts that a faulted reply's *answer* is bit-identical to the
/// fault-free reply computed over the healthy subset alone.
fn assert_healthy_identical(faulted: &Reply, oracle: &Reply) {
    assert_eq!(faulted.outcome, oracle.outcome);
    assert_eq!(faulted.layout, oracle.layout);
    assert_eq!(faulted.covered, oracle.covered);
}

#[test]
fn panicking_shard_is_isolated_and_healthy_answers_are_bit_identical() {
    let set = build_set(4, 48);
    let snap = set.snapshot();
    let reqs = requests();
    let oracle = healthy_oracle(&snap, &reqs);

    let mut runs = Vec::new();
    for threads in [Some(1), Some(2), Some(8)] {
        let (replies, counters) = faulted_run(&snap, FaultKind::PanicOnQuery, threads, &reqs);
        assert_eq!(replies.len(), reqs.len());
        for (reply, oracle_reply) in replies.iter().zip(&oracle) {
            assert!(reply.failed_shards.contains(&0), "shard 0 must be failed");
            assert!(reply.degraded, "partial coverage must be flagged");
            assert!(reply.partial());
            assert_healthy_identical(reply, oracle_reply);
        }
        assert!(counters.shard_panics > 0);
        runs.push((replies, counters));
    }
    // Bit-identical replies AND counters at 1/2/8 threads.
    assert_eq!(runs[0].0, runs[1].0);
    assert_eq!(runs[0].0, runs[2].0);
    assert_eq!(runs[0].1, runs[1].1);
    assert_eq!(runs[0].1, runs[2].1);
}

#[test]
fn nan_poisoned_shard_is_caught_by_validators() {
    let set = build_set(4, 40);
    let snap = set.snapshot();
    let reqs = requests();
    let oracle = healthy_oracle(&snap, &reqs);

    let (replies, counters) = faulted_run(&snap, FaultKind::NanPoison, Some(2), &reqs);
    for (reply, oracle_reply) in replies.iter().zip(&oracle) {
        assert!(reply.failed_shards.contains(&0));
        assert_healthy_identical(reply, oracle_reply);
        // NaN never leaks into an answer.
        match &reply.outcome {
            Outcome::Adaptive { pi, .. } | Outcome::Capped { pi, .. } | Outcome::Exact { pi } => {
                assert!(pi.iter().all(|p| p.is_finite()));
            }
            Outcome::Nonzero { .. } | Outcome::Shed { .. } => {}
        }
    }
    assert!(
        counters.poisoned_answers > 0,
        "validators must see the NaNs"
    );
    assert_eq!(counters.shard_panics, 0);
}

#[test]
fn slow_shard_times_out_and_is_failed() {
    let set = build_set(3, 30);
    let snap = set.snapshot();
    let reqs = requests();
    let oracle = {
        let cfg = DispatchConfig {
            threads: Some(1),
            ..DispatchConfig::default()
        };
        subset_dispatcher(&snap, &[1, 2], cfg).serve(&reqs)
    };
    // 2ms of injected slowness against a 1ms call timeout.
    let (replies, counters) = faulted_run(&snap, FaultKind::SlowBy(2_000_000), Some(2), &reqs);
    for (reply, oracle_reply) in replies.iter().zip(&oracle) {
        assert!(reply.failed_shards.contains(&0));
        assert_healthy_identical(reply, oracle_reply);
    }
    assert!(counters.timeouts > 0);
    // Each timed-out call still charges its modeled latency to the query.
    assert!(replies.iter().any(|r| r.elapsed_nanos >= 2_000_000));
}

#[test]
fn breaker_trips_cools_down_and_recovers_on_the_injected_clock() {
    let set = build_set(3, 24);
    let snap = set.snapshot();
    let clock = Arc::new(VirtualClock::new());
    let cfg = DispatchConfig {
        threads: Some(2),
        call_timeout_nanos: 1_000,
        breaker: BreakerConfig {
            trip_after: 3,
            cooldown_nanos: 1_000_000,
            close_after: 2,
        },
        ..DispatchConfig::default()
    };
    let mut d =
        Dispatcher::for_snapshot(&snap, cfg, clock.clone()).unwrap_or_else(|e| panic!("{e}"));
    // Chaos slowness on shard 0: every call reports 5µs against a 1µs
    // timeout. Keep a handle to heal it later.
    let chaos = ChaosShard::new(
        Box::new(EngineShard::new(snap.shards()[0].clone(), clock.clone())),
        FaultKind::SlowBy(5_000),
    );
    let armed = chaos.armed_handle();
    d.wrap_shard(0, move |_| Box::new(chaos));

    let q = Point::new(1.0, 1.0);
    // Enough failures to trip (retries make each query 3 failed attempts).
    d.serve(&[Request::Quantify(q)]);
    assert_eq!(
        d.breaker_states()[0],
        BreakerState::Open,
        "3 consecutive failures must trip the breaker"
    );
    assert_eq!(d.metrics().breaker_trips, 1);

    // While open, the shard is excluded without being called.
    let panics_before = d.metrics().shard_panics;
    let replies = d.serve(&[Request::Quantify(q)]);
    assert!(replies[0].failed_shards.contains(&0));
    assert_eq!(d.metrics().shard_panics, panics_before);

    // Cooldown elapses on the virtual clock; the shard is healed; the next
    // batch half-opens the breaker, probes succeed, and it closes.
    clock.advance(2_000_000);
    armed.store(false, Ordering::Relaxed);
    d.serve(&[Request::Quantify(q), Request::Quantify(q)]);
    assert_eq!(
        d.breaker_states()[0],
        BreakerState::Closed,
        "two successful probes must close the breaker"
    );
    assert!(d.metrics().breaker_recoveries >= 1);

    // Healed: full coverage again.
    let replies = d.serve(&[Request::Quantify(q)]);
    assert!(replies[0].failed_shards.is_empty());
    assert_eq!(replies[0].covered, replies[0].total_live);
}

#[test]
fn shedding_is_honest_and_tiered() {
    let set = build_set(2, 20);
    let snap = set.snapshot();
    let exact_work = snap.exact_view().work();
    let s = snap.mc_rounds() as u64;
    // Capacity for one exact sweep, one adaptive run, one capped run —
    // then nothing.
    let cfg = DispatchConfig {
        threads: Some(1),
        admission: AdmissionConfig {
            work_capacity: exact_work + s + 64,
            nn_cost: 8,
            capped_rounds: 64,
            feedback: None,
        },
        ..DispatchConfig::default()
    };
    let mut d =
        Dispatcher::for_snapshot(&snap, cfg, Arc::new(NullClock)).unwrap_or_else(|e| panic!("{e}"));
    let q = Point::new(2.0, 2.0);
    let replies = d.serve(&[
        Request::Quantify(q),
        Request::Quantify(q),
        Request::Quantify(q),
        Request::Quantify(q),
        Request::Quantify(Point::new(f64::NAN, 0.0)),
    ]);
    assert!(matches!(replies[0].outcome, Outcome::Exact { .. }));
    match &replies[1].outcome {
        Outcome::Adaptive {
            achieved_epsilon, ..
        } => assert!(achieved_epsilon.is_finite() && *achieved_epsilon > 0.0),
        other => panic!("expected Adaptive, got {other:?}"),
    }
    match &replies[2].outcome {
        Outcome::Capped {
            achieved_epsilon,
            rounds_used,
            ..
        } => {
            assert!(*rounds_used <= 64);
            assert!(*achieved_epsilon > 0.0, "capped tier is honest about ε");
        }
        other => panic!("expected Capped, got {other:?}"),
    }
    assert_eq!(
        replies[3].outcome,
        Outcome::Shed {
            reason: ShedReason::CapacityExhausted
        }
    );
    assert_eq!(
        replies[4].outcome,
        Outcome::Shed {
            reason: ShedReason::InvalidQuery
        }
    );
    // Downgraded tiers are flagged degraded even at full coverage.
    assert!(!replies[0].degraded);
    assert!(replies[1].degraded && replies[2].degraded);
    let m = d.metrics();
    assert_eq!(m.answered_exact, 1);
    assert_eq!(m.answered_adaptive, 1);
    assert_eq!(m.answered_capped, 1);
    assert_eq!(m.shed, 2);
    assert_eq!(m.shed_capacity, 1);
    assert_eq!(m.shed_invalid, 1);
}

#[test]
fn deadline_and_retry_accounting_is_deterministic() {
    let set = build_set(2, 16);
    let snap = set.snapshot();
    // A zero deadline: every shard call is skipped before it starts.
    let cfg = DispatchConfig {
        threads: Some(1),
        deadline_nanos: 0,
        ..DispatchConfig::default()
    };
    let mut d =
        Dispatcher::for_snapshot(&snap, cfg, Arc::new(NullClock)).unwrap_or_else(|e| panic!("{e}"));
    // The exact tier bypasses shard calls, so force the Monte-Carlo path.
    d.wrap_shard(0, |b| b);
    let replies = d.serve(&[Request::Quantify(Point::new(0.0, 0.0))]);
    assert_eq!(
        replies[0].outcome,
        Outcome::Shed {
            reason: ShedReason::DeadlineExceeded
        }
    );
    assert_eq!(d.metrics().shed_deadline, 1);

    // Retries are bounded: a panicking shard costs exactly
    // 1 + max_retries attempts per stage-1 call.
    let cfg = DispatchConfig {
        threads: Some(1),
        retry: RetryPolicy {
            max_retries: 2,
            backoff_base_nanos: 1_000,
        },
        ..DispatchConfig::default()
    };
    let mut d =
        Dispatcher::for_snapshot(&snap, cfg, Arc::new(NullClock)).unwrap_or_else(|e| panic!("{e}"));
    d.wrap_shard(0, |inner| {
        Box::new(ChaosShard::new(inner, FaultKind::PanicOnQuery))
    });
    let replies = d.serve(&[Request::Quantify(Point::new(0.0, 0.0))]);
    assert_eq!(replies[0].retries, 2);
    assert_eq!(d.metrics().shard_panics, 3);
    // Backoff is charged to the modeled latency: 1µs + 2µs.
    assert!(replies[0].elapsed_nanos >= 3_000);
}

#[test]
fn empty_set_and_all_shards_down_answer_honestly() {
    let set = build_set(2, 0);
    let snap = set.snapshot();
    let mut d = Dispatcher::for_snapshot(&snap, DispatchConfig::default(), Arc::new(NullClock))
        .unwrap_or_else(|e| panic!("{e}"));
    let replies = d.serve(&[
        Request::NnNonzero(Point::new(0.0, 0.0)),
        Request::Quantify(Point::new(0.0, 0.0)),
    ]);
    assert_eq!(replies[0].outcome, Outcome::Nonzero { ids: vec![] });
    assert_eq!(replies[1].outcome, Outcome::Exact { pi: vec![] });

    // Every shard poisoned: NoCoverage, not a wrong answer.
    let set = build_set(2, 12);
    let snap = set.snapshot();
    let mut d = Dispatcher::for_snapshot(&snap, DispatchConfig::default(), Arc::new(NullClock))
        .unwrap_or_else(|e| panic!("{e}"));
    for k in 0..2 {
        d.wrap_shard(k, |inner| {
            Box::new(ChaosShard::new(inner, FaultKind::PanicOnQuery))
        });
    }
    let replies = d.serve(&[Request::NnNonzero(Point::new(0.0, 0.0))]);
    assert_eq!(
        replies[0].outcome,
        Outcome::Shed {
            reason: ShedReason::NoCoverage
        }
    );
    assert_eq!(replies[0].failed_shards, vec![0, 1]);
}
