//! Differential-oracle suite: one shared random discrete corpus pushed
//! through every quantification path — the exact Eq. 2 sweep, the spiral
//! estimator, fixed-`s` Monte-Carlo (adaptive forced to exhaust its
//! budget), adaptive early stopping, and budget-capped degradation — with
//! pairwise agreement checked against each path's *honest* advertised
//! accuracy (`achieved_epsilon` / `half_width`), never a hard-coded bound.
//!
//! Everything here is deterministic: corpus and queries come from fixed
//! seeds and the Monte-Carlo rounds are frozen at build time by
//! `PnnConfig::seed`, so these are regression tests, not flaky
//! probabilistic ones.

use unn::geom::Point;
use unn::observe::{NullClock, QueryOutcome};
use unn::quantify::ADAPTIVE_MIN_ROUNDS;
use unn::{PnnIndex, QuantifyMethod, QuantifyOutcome, QueryBudget, Uncertain, UnnError};
use unn_testkit::{corpus as kit, max_abs_diff};

const EPS: f64 = 0.05;
const DELTA: f64 = 0.01;

fn corpus(n: usize, k: usize, seed: u64) -> Vec<Uncertain> {
    kit::weighted_discrete(n, k, seed)
}

fn queries(m: usize, seed: u64) -> Vec<Point> {
    kit::query_points(m, seed, 30.0)
}

fn shared() -> (PnnIndex, Vec<Point>) {
    (PnnIndex::new(corpus(24, 4, 900)), queries(12, 901))
}

/// `rounds_used` must land on the doubling checkpoint schedule
/// `{min, 2·min, 4·min, …} ∪ {cap}` — the stopping rule only evaluates (and
/// certifies `half_width` at) checkpoints.
fn is_checkpoint(rounds_used: usize, cap: usize) -> bool {
    let mut t = ADAPTIVE_MIN_ROUNDS.min(cap);
    loop {
        if rounds_used == t {
            return true;
        }
        if t >= cap {
            return false;
        }
        t = (t * 2).min(cap);
    }
}

/// The exact sweep is the ground truth every other path is judged against:
/// a proper distribution whose support is exactly the nonzero-NN set.
#[test]
fn exact_oracle_is_distribution_with_nonzero_support() {
    let (idx, qs) = shared();
    for &q in &qs {
        let (pi, method) = idx.quantify_exact(q);
        assert_eq!(method, QuantifyMethod::ExactSweep);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let nonzero = idx.nn_nonzero(q);
        for (i, &p) in pi.iter().enumerate() {
            assert!(p >= 0.0);
            assert!(
                p <= 1e-12 || nonzero.contains(&i),
                "pi[{i}]={p} but {i} not in nonzero set at {q:?}"
            );
        }
    }
}

/// Spiral (the fixed discrete estimator behind `quantify`) agrees with the
/// exact oracle within the configured ε it advertises.
#[test]
fn spiral_agrees_with_exact_within_configured_epsilon() {
    let (idx, qs) = shared();
    for &q in &qs {
        let (pi, method) = idx.quantify(q);
        assert_eq!(method, QuantifyMethod::Spiral);
        let (exact, _) = idx.quantify_exact(q);
        let d = max_abs_diff(&pi, &exact);
        assert!(
            d <= idx.config().epsilon + 1e-9,
            "spiral off by {d} at {q:?}"
        );
    }
}

/// Fixed-`s` Monte-Carlo: an adaptive query with an unreachably small ε
/// consumes every pre-drawn round, so its estimate IS the fixed-`s`
/// estimate. It must sit within the `mc_achieved_epsilon` the build
/// certifies for that `s` (and within its own reported half-width).
#[test]
fn fixed_s_mc_agrees_with_exact_within_achieved_epsilon() {
    let (idx, qs) = shared();
    let s = idx.mc_rounds();
    for &q in &qs {
        let a = idx.quantify_adaptive(q, 1e-9, DELTA);
        assert_eq!(a.rounds_used, s, "1e-9 target must exhaust the budget");
        let (exact, _) = idx.quantify_exact(q);
        let d = max_abs_diff(&a.pi, &exact);
        assert!(
            d <= idx.mc_achieved_epsilon(),
            "fixed-s off by {d} > {} at {q:?}",
            idx.mc_achieved_epsilon()
        );
        assert!(
            d <= a.half_width,
            "fixed-s off by {d} > hw {}",
            a.half_width
        );
    }
}

/// Adaptive early stopping: the certificate is honest (the true error is
/// within `half_width`), the target is met unless the budget ran dry, and
/// `rounds_used` lands on the checkpoint schedule the bound was union'd
/// over.
#[test]
fn adaptive_certificate_is_honest_and_rounds_consistent() {
    let (idx, qs) = shared();
    let s = idx.mc_rounds();
    for &q in &qs {
        let a = idx.quantify_adaptive(q, EPS, DELTA);
        assert!((a.pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(a.rounds_used >= ADAPTIVE_MIN_ROUNDS.min(s));
        assert!(a.rounds_used <= s);
        assert!(
            is_checkpoint(a.rounds_used, s),
            "rounds_used={}",
            a.rounds_used
        );
        assert!(
            a.half_width <= EPS || a.rounds_used == s,
            "stopped early at {} rounds without certifying eps (hw={})",
            a.rounds_used,
            a.half_width
        );
        let (exact, _) = idx.quantify_exact(q);
        let d = max_abs_diff(&a.pi, &exact);
        assert!(
            d <= a.half_width,
            "true error {d} > certified {}",
            a.half_width
        );
    }
}

/// Budget-capped quantification degrades honestly: under a cap below the
/// exact-sweep cost the answer is `Degraded` with `rounds_used ≤ cap`,
/// `work == rounds_used`, and a certificate that really bounds the error;
/// a zero budget errs; an ample budget reproduces the exact sweep
/// bit-for-bit.
#[test]
fn budget_capped_agrees_within_achieved_epsilon() {
    let (idx, qs) = shared();
    let exact_work = idx.exact_work();
    let cap = 64u64;
    assert!(cap < exact_work, "corpus too small to force degradation");
    for &q in &qs {
        match idx.quantify_within(q, QueryBudget::with_work(cap)).unwrap() {
            QuantifyOutcome::Degraded {
                pi,
                achieved_epsilon,
                rounds_used,
                work,
            } => {
                assert!(rounds_used as u64 <= cap);
                assert_eq!(work, rounds_used as u64);
                assert!(is_checkpoint(rounds_used, cap as usize));
                let (exact, _) = idx.quantify_exact(q);
                let d = max_abs_diff(&pi, &exact);
                assert!(
                    d <= achieved_epsilon,
                    "degraded error {d} > certified {achieved_epsilon} at {q:?}"
                );
            }
            other => panic!("expected Degraded under cap {cap}, got {other:?}"),
        }

        match idx.quantify_within(q, QueryBudget::with_work(0)) {
            Err(UnnError::BudgetExhausted { .. }) => {}
            other => panic!("expected BudgetExhausted at zero budget, got {other:?}"),
        }

        let (exact, _) = idx.quantify_exact(q);
        match idx.quantify_within(q, QueryBudget::unlimited()).unwrap() {
            QuantifyOutcome::Exact { pi, work, .. } => {
                assert_eq!(pi, exact, "unlimited budget must match the sweep exactly");
                assert_eq!(work, exact_work);
            }
            other => panic!("expected Exact under unlimited budget, got {other:?}"),
        }
    }
}

/// Every pair of approximate paths agrees within the *sum* of its honest
/// bounds (triangle inequality through the exact oracle) — catches any
/// path silently reporting a tighter accuracy than it delivers.
#[test]
fn pairwise_agreement_within_summed_bounds() {
    let (idx, qs) = shared();
    let eps_spiral = idx.config().epsilon;
    for &q in &qs {
        let (spiral, _) = idx.quantify(q);
        let a = idx.quantify_adaptive(q, EPS, DELTA);
        let degraded = match idx.quantify_within(q, QueryBudget::with_work(64)).unwrap() {
            QuantifyOutcome::Degraded {
                pi,
                achieved_epsilon,
                ..
            } => (pi, achieved_epsilon),
            other => panic!("expected Degraded, got {other:?}"),
        };
        assert!(max_abs_diff(&spiral, &a.pi) <= eps_spiral + a.half_width);
        assert!(max_abs_diff(&spiral, &degraded.0) <= eps_spiral + degraded.1);
        assert!(max_abs_diff(&a.pi, &degraded.0) <= a.half_width + degraded.1);
    }
}

/// The observability layer reports the same numbers the results carry:
/// `QueryStats.rounds_used` / `rounds_total` / `achieved_epsilon` match the
/// `AdaptiveQuantify` they rode in on, and guarded outcomes map to the
/// right `QueryOutcome`.
#[test]
fn observed_stats_match_results() {
    let (idx, qs) = shared();
    let s = idx.mc_rounds() as u64;
    for &q in &qs {
        let (a, stats) = idx.quantify_adaptive_observed(q, EPS, DELTA, &NullClock);
        assert_eq!(stats.rounds_used, a.rounds_used as u64);
        assert_eq!(stats.rounds_total, s);
        assert_eq!(stats.achieved_epsilon, a.half_width);
        assert_eq!(stats.wall_nanos, 0, "NullClock must report zero wall time");

        let (res, stats) = idx.quantify_guarded_observed(q, QueryBudget::with_work(64), &NullClock);
        match res.unwrap() {
            QuantifyOutcome::Degraded {
                rounds_used,
                achieved_epsilon,
                ..
            } => {
                assert_eq!(stats.outcome, QueryOutcome::Degraded);
                assert_eq!(stats.rounds_used, rounds_used as u64);
                assert_eq!(stats.achieved_epsilon, achieved_epsilon);
            }
            QuantifyOutcome::Exact { .. } => panic!("cap 64 must degrade"),
        }

        let (res, stats) = idx.quantify_guarded_observed(q, QueryBudget::unlimited(), &NullClock);
        assert!(matches!(res, Ok(QuantifyOutcome::Exact { .. })));
        assert_eq!(stats.outcome, QueryOutcome::Exact);
    }
}

/// Serving-layer honesty under faults and shedding: every degraded tier the
/// dispatcher hands back (adaptive after a shard failure, round-capped
/// under admission pressure) certifies an `achieved_epsilon` that really
/// bounds its error against the exact Eq. 2 sweep **over the covered set**
/// — the points its `layout` actually names. Deterministic: fixed seeds
/// freeze the Monte-Carlo rounds, so this is a regression test.
#[test]
fn serve_degraded_epsilon_bounds_true_error_under_faults_and_shedding() {
    use std::sync::Arc;
    use unn::serve::{
        AdmissionConfig, ChaosShard, DispatchConfig, Dispatcher, FaultKind, Outcome, Request,
        ServeConfig, ShardPolicy, ShardSet,
    };
    use unn::PointId;
    use unn_observe::NullClock;

    let points = corpus(24, 3, 3100);
    let cfg = ServeConfig {
        mc_rounds: 256,
        ..ServeConfig::default()
    };
    let mut set = ShardSet::new(3, ShardPolicy::Hash, cfg).unwrap();
    for (i, p) in points.iter().enumerate() {
        assert_eq!(set.insert(p.clone()), i as PointId);
    }
    let snap = set.snapshot();
    let qs = queries(10, 3101);

    // The exact oracle over an arbitrary covered subset, in layout order.
    let exact_over = |layout: &[PointId], q: Point| -> Vec<f64> {
        let subset: Vec<Uncertain> = layout
            .iter()
            .map(|&id| points[id as usize].clone())
            .collect();
        PnnIndex::new(subset).quantify_exact(q).0
    };

    // Scenario 1: shard 0 panics — partial coverage, adaptive tier.
    let mut faulted = Dispatcher::for_snapshot(
        &snap,
        DispatchConfig {
            threads: Some(2),
            ..DispatchConfig::default()
        },
        Arc::new(NullClock),
    )
    .unwrap();
    faulted.wrap_shard(0, |inner| {
        Box::new(ChaosShard::new(inner, FaultKind::PanicOnQuery))
    });

    // Scenario 2: admission pressure — full coverage, capped tier.
    let mut starved = Dispatcher::for_snapshot(
        &snap,
        DispatchConfig {
            threads: Some(2),
            admission: AdmissionConfig {
                work_capacity: 64,
                nn_cost: 8,
                capped_rounds: 64,
                feedback: None,
            },
            ..DispatchConfig::default()
        },
        Arc::new(NullClock),
    )
    .unwrap();

    for &q in &qs {
        let reply = faulted.serve(&[Request::Quantify(q)]).remove(0);
        match &reply.outcome {
            Outcome::Adaptive {
                pi,
                achieved_epsilon,
                ..
            } => {
                assert!(reply.partial(), "shard 0 must be missing");
                let exact = exact_over(&reply.layout, q);
                let d = max_abs_diff(pi, &exact);
                assert!(
                    d <= *achieved_epsilon,
                    "faulted degraded error {d} > certified {achieved_epsilon} at {q:?}"
                );
            }
            other => panic!("expected Adaptive under shard fault, got {other:?}"),
        }

        // One query per batch so the capacity ladder lands on Capped.
        let reply = starved.serve(&[Request::Quantify(q)]).remove(0);
        match &reply.outcome {
            Outcome::Capped {
                pi,
                achieved_epsilon,
                rounds_used,
            } => {
                assert!(*rounds_used <= 64);
                assert_eq!(reply.covered, points.len(), "no shard failed here");
                let exact = exact_over(&reply.layout, q);
                let d = max_abs_diff(pi, &exact);
                assert!(
                    d <= *achieved_epsilon,
                    "capped degraded error {d} > certified {achieved_epsilon} at {q:?}"
                );
            }
            other => panic!("expected Capped under admission pressure, got {other:?}"),
        }
    }
}
