//! Chaos and bit-identity suite for the network transport (`unn::net`).
//!
//! Contracts under test, per DESIGN.md §10:
//!
//! * replies served over the loopback transport are bit-identical to
//!   in-process [`Dispatcher`] calls, at 1, 2, and 8 worker threads;
//! * scripted transport faults (drop, truncate, bit-flip, split, delay) on
//!   one connection heal through retry + reconnect and never perturb the
//!   replies of other connections;
//! * the client's deadline budget crosses the wire as *remaining* nanos —
//!   retries and injected delay tighten the server's ladder exactly as if
//!   the caller were in-process;
//! * version and epoch handshake rejections are permanent (never retried);
//! * localhost TCP round trips are bit-identical to in-process serving.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use unn::geom::Point;
use unn::net::{
    tcp_connector, ChaosDuplex, ClientConfig, Connection, Duplex, FrameFault, LoopbackDuplex,
    NetClient, NetError, NetServer, ServerConfig,
};
use unn::serve::{
    ChaosShard, DispatchConfig, Dispatcher, FaultKind, Outcome, Reply, Request, RetryPolicy,
    ServeConfig, ShardPolicy, ShardSet, ShardSetSnapshot,
};
use unn::wire::{
    decode_frame, encode_frame, frame_bytes, ErrorCode, Frame, Hello, ANY_EPOCH, WIRE_VERSION,
};
use unn::Uncertain;
use unn_observe::NullClock;

fn build_set(n_shards: usize, n_points: usize) -> ShardSet {
    let cfg = ServeConfig {
        mc_rounds: 96,
        ..ServeConfig::default()
    };
    let mut set = ShardSet::new(n_shards, ShardPolicy::Hash, cfg).unwrap_or_else(|e| panic!("{e}"));
    for i in 0..n_points {
        set.insert(Uncertain::uniform_disk(
            Point::new((i % 8) as f64 * 2.2, (i / 8) as f64 * 2.2),
            0.35 + 0.04 * (i % 4) as f64,
        ));
    }
    set
}

fn requests() -> Vec<Request> {
    let mut reqs = Vec::new();
    for i in 0..10 {
        let q = Point::new(1.3 * i as f64 - 4.0, 0.9 * (i % 5) as f64);
        reqs.push(Request::NnNonzero(q));
        reqs.push(Request::Quantify(q));
    }
    reqs
}

fn dispatch_config(threads: Option<usize>) -> DispatchConfig {
    DispatchConfig {
        threads,
        ..DispatchConfig::default()
    }
}

fn dispatcher(snap: &ShardSetSnapshot, threads: Option<usize>) -> Dispatcher {
    Dispatcher::for_snapshot(snap, dispatch_config(threads), Arc::new(NullClock))
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The in-process ground truth: a fresh dispatcher serving `reqs` under
/// `budget` — what every transport path must reproduce bit-for-bit.
fn oracle(
    snap: &ShardSetSnapshot,
    threads: Option<usize>,
    reqs: &[Request],
    budget: u64,
) -> Vec<Reply> {
    dispatcher(snap, threads).serve_with_deadline(reqs, budget)
}

fn shared(snap: &ShardSetSnapshot, threads: Option<usize>) -> Arc<Mutex<Dispatcher>> {
    Arc::new(Mutex::new(dispatcher(snap, threads)))
}

/// A dispatcher whose every shard reports 50 µs of modeled latency per
/// call — with the [`NullClock`] shards otherwise report zero elapsed, so
/// this is what makes a deadline budget actually bite.
fn slow_dispatcher(snap: &ShardSetSnapshot, threads: Option<usize>) -> Dispatcher {
    let mut d = dispatcher(snap, threads);
    for k in 0..snap.shards().len() {
        d.wrap_shard(k, |inner| {
            Box::new(ChaosShard::new(inner, FaultKind::SlowBy(50_000)))
        });
    }
    d
}

fn loopback_client(d: Arc<Mutex<Dispatcher>>, cfg: ClientConfig) -> NetClient {
    NetClient::new(
        LoopbackDuplex::connector(d, ServerConfig::default()),
        cfg,
        Arc::new(NullClock),
    )
}

/// A connector handing each new connection the next fault script; once the
/// scripts run dry, connections are clean.
fn scripted_connector(
    d: Arc<Mutex<Dispatcher>>,
    scripts: Vec<Vec<FrameFault>>,
) -> impl FnMut() -> Result<Box<dyn Duplex>, NetError> + Send + 'static {
    let mut scripts: VecDeque<Vec<FrameFault>> = scripts.into();
    move || {
        let script = scripts.pop_front().unwrap_or_default();
        Ok(Box::new(ChaosDuplex::new(
            LoopbackDuplex::new(Arc::clone(&d), ServerConfig::default()),
            script,
        )) as Box<dyn Duplex>)
    }
}

#[test]
fn loopback_replies_are_bit_identical_to_in_process() {
    let snap = build_set(3, 28).snapshot();
    let reqs = requests();
    for threads in [Some(1), Some(2), Some(8)] {
        let want = oracle(&snap, threads, &reqs, u64::MAX);
        let mut client = loopback_client(shared(&snap, threads), ClientConfig::default());
        let got = client.serve(&reqs).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(got, want, "threads={threads:?}");
        // A second batch over the reused connection is equally identical.
        let again = client.serve(&reqs).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(again, want, "threads={threads:?}, second batch");
        let stats = client.stats();
        assert_eq!(stats.reconnects, 0);
        assert_eq!(stats.retried_attempts, 0);
        // Handshake + two batches out; ack + two reply batches in.
        assert_eq!(stats.frames_out, 3);
        assert_eq!(stats.frames_in, 3);
    }
}

#[test]
fn transport_faults_heal_through_retry_and_reconnect() {
    let snap = build_set(3, 28).snapshot();
    let reqs = requests();
    let want = oracle(&snap, Some(2), &reqs, u64::MAX);
    let d = shared(&snap, Some(2));

    // Connection 1: handshake survives, the request frame is dropped — the
    // server never answers, the client times out. Connection 2: truncated
    // request, same stall. Connection 3: the request's frame tag is
    // bit-flipped (framed byte 4 is the first body byte), so the server
    // rejects it as malformed and the client hears a remote error.
    // Connection 4: both frames split mid-stream — reassembly succeeds.
    let scripts = vec![
        vec![FrameFault::Deliver, FrameFault::Drop],
        vec![FrameFault::Deliver, FrameFault::Truncate(6)],
        vec![FrameFault::Deliver, FrameFault::CorruptBit(32)],
        vec![FrameFault::SplitAt(3), FrameFault::SplitAt(10)],
    ];
    let cfg = ClientConfig {
        retry: RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::default()
        },
        ..ClientConfig::default()
    };
    let mut client = NetClient::new(
        scripted_connector(Arc::clone(&d), scripts),
        cfg,
        Arc::new(NullClock),
    );
    let got = client.serve(&reqs).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(got, want, "replies after three healed faults");
    let stats = client.stats();
    assert_eq!(stats.retried_attempts, 3);
    assert_eq!(stats.reconnects, 3);

    // A clean connection to the same dispatcher, after all that chaos,
    // still answers bit-identically.
    let mut clean = loopback_client(d, ClientConfig::default());
    assert_eq!(clean.serve(&reqs).unwrap_or_else(|e| panic!("{e}")), want);
    assert_eq!(clean.stats().retried_attempts, 0);
}

#[test]
fn chaos_on_one_connection_never_perturbs_another() {
    let snap = build_set(3, 28).snapshot();
    let reqs = requests();
    let want = oracle(&snap, Some(2), &reqs, u64::MAX);
    let d = shared(&snap, Some(2));

    // The noisy client fails every attempt (every script is pure loss) and
    // ultimately errors out.
    let noisy_scripts = (0..3)
        .map(|_| vec![FrameFault::Deliver, FrameFault::Drop])
        .collect();
    let mut noisy = NetClient::new(
        scripted_connector(Arc::clone(&d), noisy_scripts),
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    let mut clean = loopback_client(Arc::clone(&d), ClientConfig::default());

    // Interleave: clean batches bracket and interleave the noisy failure.
    assert_eq!(clean.serve(&reqs).unwrap_or_else(|e| panic!("{e}")), want);
    let err = noisy.serve(&reqs).expect_err("all-loss scripts must fail");
    assert!(err.retryable(), "loss is a retryable failure: {err:?}");
    assert_eq!(clean.serve(&reqs).unwrap_or_else(|e| panic!("{e}")), want);
}

#[test]
fn deadline_budget_crosses_the_wire_honestly() {
    let snap = build_set(3, 28).snapshot();
    let reqs = requests();
    let slow_oracle =
        |budget: u64| slow_dispatcher(&snap, Some(2)).serve_with_deadline(&reqs, budget);
    let d = Arc::new(Mutex::new(slow_dispatcher(&snap, Some(2))));
    let mut client = loopback_client(Arc::clone(&d), ClientConfig::default());

    // With NullClock the client burns no wall time, so the server must see
    // exactly the caller's budget — replies match in-process calls with
    // the same deadline, including the degraded/shed tiers. (Each shard
    // models 50 µs per call, so these budgets span shed-everything through
    // full service.)
    for budget in [1u64, 60_000, 120_000, u64::MAX / 2] {
        let want = slow_oracle(budget);
        let got = client
            .serve_within(&reqs, budget)
            .unwrap_or_else(|e| panic!("budget {budget}: {e}"));
        assert_eq!(got, want, "budget={budget}");
    }
    // The tightest budget must actually bite: 1 ns buys at most one
    // 50 µs shard call per query, so replies shed or degrade.
    let tight = slow_oracle(1);
    assert!(
        tight
            .iter()
            .any(|r| r.degraded || matches!(r.outcome, Outcome::Shed { .. })),
        "a 1 ns budget should not buy full service"
    );
    // And the widest must not: full service at an effectively unbounded
    // budget, so the equality checks above compare distinct tiers.
    assert!(slow_oracle(u64::MAX / 2).iter().all(|r| !r.degraded));

    // A retry charges its backoff to the budget: after one dropped frame,
    // the server sees `budget - backoff(1)` remaining.
    let retry = RetryPolicy::default();
    let budget = 150_000u64;
    let want = slow_oracle(budget - retry.backoff_nanos(1));
    let mut faulted = NetClient::new(
        scripted_connector(
            Arc::clone(&d),
            vec![vec![FrameFault::Deliver, FrameFault::Drop]],
        ),
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    let got = faulted
        .serve_within(&reqs, budget)
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(got, want, "backoff must tighten the wire deadline");

    // Injected transport delay charges the budget the same way. A delayed
    // frame still arrives, so to observe the charge the script delays the
    // hello and drops the request — both charges land before attempt 2.
    let delay = 49_000u64;
    let want = slow_oracle(budget - retry.backoff_nanos(1) - delay);
    let mut delayed = NetClient::new(
        scripted_connector(
            Arc::clone(&d),
            vec![vec![FrameFault::Delay(delay), FrameFault::Drop]],
        ),
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    let got = delayed
        .serve_within(&reqs, budget)
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(got, want, "injected delay must tighten the wire deadline");

    // A budget smaller than the first backoff is exhausted client-side.
    let mut doomed = NetClient::new(
        scripted_connector(
            Arc::clone(&d),
            vec![vec![FrameFault::Deliver, FrameFault::Drop]],
        ),
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    let err = doomed
        .serve_within(&reqs, retry.backoff_nanos(1))
        .expect_err("budget below one backoff cannot complete");
    assert!(
        matches!(err, NetError::BudgetExhausted { .. }),
        "got {err:?}"
    );
    assert!(!err.retryable());
}

#[test]
fn handshake_rejections_are_permanent() {
    let snap = build_set(2, 12).snapshot();
    let d = shared(&snap, Some(1));

    // Epoch mismatch: the client demands epoch 7, the server holds 3.
    let connector = {
        let d = Arc::clone(&d);
        move || {
            Ok(Box::new(LoopbackDuplex::new(
                Arc::clone(&d),
                ServerConfig { index_epoch: 3 },
            )) as Box<dyn Duplex>)
        }
    };
    let cfg = ClientConfig {
        expected_epoch: 7,
        ..ClientConfig::default()
    };
    let mut client = NetClient::new(connector, cfg, Arc::new(NullClock));
    let err = client.serve(&requests()).expect_err("epoch 7 != 3");
    match &err {
        NetError::Handshake {
            code, ours, theirs, ..
        } => {
            assert_eq!(*code, ErrorCode::EpochMismatch);
            assert_eq!((*ours, *theirs), (3, 7));
        }
        other => panic!("expected a handshake rejection, got {other:?}"),
    }
    assert!(!err.retryable());
    assert_eq!(
        client.stats().retried_attempts,
        0,
        "handshake errors never retry"
    );

    // The wildcard epoch always passes.
    let mut any = loopback_client(
        Arc::clone(&d),
        ClientConfig {
            expected_epoch: ANY_EPOCH,
            ..ClientConfig::default()
        },
    );
    let ack = any.connect().unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(ack.version, WIRE_VERSION);
    assert_eq!(ack.total_live as usize, 12);

    // Version mismatch: a hand-crafted future-version hello is rejected
    // with a dead connection and a VersionMismatch error frame.
    let mut conn = Connection::new(d, ServerConfig::default());
    let mut out = Vec::new();
    let hello = encode_frame(&Frame::Hello(Hello {
        version: WIRE_VERSION + 1,
        expected_epoch: ANY_EPOCH,
    }));
    conn.feed(&frame_bytes(&hello), &mut out);
    assert!(conn.is_dead());
    let (body, _) = unn::wire::frame_split(&out)
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or_else(|| panic!("no reply frame"));
    match decode_frame(body) {
        Ok(Frame::Error(e)) => {
            assert_eq!(e.code, ErrorCode::VersionMismatch);
            assert_eq!(e.ours, u64::from(WIRE_VERSION));
            assert_eq!(e.theirs, u64::from(WIRE_VERSION + 1));
        }
        other => panic!("expected a version-mismatch error frame, got {other:?}"),
    }
}

#[test]
fn tcp_round_trip_is_bit_identical() {
    let snap = build_set(3, 28).snapshot();
    let reqs = requests();
    let want = oracle(&snap, Some(2), &reqs, u64::MAX);

    let server = NetServer::bind(
        "127.0.0.1:0",
        shared(&snap, Some(2)),
        ServerConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{e}"));
    let mut client = NetClient::new(
        tcp_connector(server.local_addr(), Duration::from_secs(10)),
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    let got = client.serve(&reqs).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(got, want, "TCP replies must be bit-identical to in-process");
    // Connection reuse: a second batch on the same socket.
    let again = client.serve(&reqs).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(again, want);
    assert_eq!(client.stats().reconnects, 0);

    // A second, concurrent client sees the same bits.
    let mut other = NetClient::new(
        tcp_connector(server.local_addr(), Duration::from_secs(10)),
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    assert_eq!(other.serve(&reqs).unwrap_or_else(|e| panic!("{e}")), want);

    server.shutdown();
}
