//! Sensor fusion: discrete (particle-filter) position estimates.
//!
//! Each tracked target is represented by a small weighted particle set —
//! the paper's discrete distribution of description complexity `k`. The
//! example runs spiral search (Theorem 4.7) with its deterministic
//! ε-guarantee, probability-threshold alerts, and demonstrates the
//! remark (i) pitfall of dropping low-weight particles.
//!
//! ```sh
//! cargo run --release --example sensor_fusion
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::distr::DiscreteDistribution;
use unn::geom::Point;
use unn::quantify::{quantification_exact, threshold_query_spiral, SpiralIndex};

fn main() {
    let mut rng = SmallRng::seed_from_u64(42);
    // Twelve targets, five weighted particles each.
    let targets: Vec<DiscreteDistribution> = (0..12)
        .map(|_| {
            let cx: f64 = rng.random_range(-10.0..10.0);
            let cy: f64 = rng.random_range(-10.0..10.0);
            let pts: Vec<Point> = (0..5)
                .map(|_| {
                    Point::new(
                        cx + rng.random_range(-1.5..1.5),
                        cy + rng.random_range(-1.5..1.5),
                    )
                })
                .collect();
            let ws: Vec<f64> = (0..5).map(|_| rng.random_range(0.5..3.0)).collect();
            DiscreteDistribution::new(pts, ws).expect("valid particles")
        })
        .collect();

    let idx = SpiralIndex::build(&targets);
    println!(
        "{} targets, {} particles total, weight spread rho = {:.2}",
        targets.len(),
        targets.iter().map(|t| t.len()).sum::<usize>(),
        idx.spread()
    );

    let q = Point::new(0.0, 0.0);
    for eps in [0.1, 0.01, 0.001] {
        let m = idx.m_for(eps);
        let pi = idx.query(q, eps);
        let exact = quantification_exact(&targets, q);
        let max_err = pi
            .iter()
            .zip(&exact)
            .map(|(a, e)| (a - e).abs())
            .fold(0.0f64, f64::max);
        println!(
            "eps = {eps:<6} -> retrieves m = {m:>3} particles, max error {max_err:.2e} (bound {eps})"
        );
        assert!(
            max_err <= eps,
            "Theorem 4.7 violated: spiral error {max_err} exceeds eps {eps}"
        );
    }

    // Threshold alert: which targets are the NN with probability > 25%?
    let res = threshold_query_spiral(&idx, q, 0.25, 0.01);
    println!("\ntargets with P(nearest to {q:?}) > 0.25: {:?}", res.above);
    if !res.uncertain.is_empty() {
        println!("undecided at this precision: {:?}", res.uncertain);
    }
    // The threshold answer must agree with the exact probabilities: every
    // reported target is really above 0.25 (minus the decision margin).
    let exact_all = quantification_exact(&targets, q);
    for &i in &res.above {
        assert!(
            exact_all[i] > 0.25 - 0.01,
            "target {i} reported above threshold but pi = {}",
            exact_all[i]
        );
    }

    // The remark (i) pitfall: dropping particles lighter than eps/k looks
    // harmless but can distort *other* targets' probabilities. This is the
    // paper's own adversarial instance: a swarm of feather-weight particles
    // between the two heavy candidates.
    println!("\nremark (i): dropping light particles vs honest truncation");
    let eps = 0.05;
    let mut adversarial: Vec<DiscreteDistribution> = Vec::new();
    adversarial.push(
        DiscreteDistribution::new(
            vec![Point::new(1.0, 0.0), Point::new(1000.0, 0.0)],
            vec![3.0 * eps, 1.0 - 3.0 * eps],
        )
        .expect("valid"),
    );
    let swarm = 50usize;
    for t in 0..swarm {
        let a = t as f64 * 0.1;
        adversarial.push(
            DiscreteDistribution::new(
                vec![
                    Point::new(2.0 * a.cos(), 2.0 * a.sin()),
                    Point::new(1000.0, 10.0 + t as f64),
                ],
                vec![1.0 / swarm as f64, 1.0 - 1.0 / swarm as f64],
            )
            .expect("valid"),
        );
    }
    adversarial.push(
        DiscreteDistribution::new(
            vec![Point::new(3.0, 0.0), Point::new(1000.0, -10.0)],
            vec![5.0 * eps, 1.0 - 5.0 * eps],
        )
        .expect("valid"),
    );
    let aidx = SpiralIndex::build(&adversarial);
    let q = Point::new(0.0, 0.0);
    let exact = quantification_exact(&adversarial, q);
    let honest = aidx.query(q, eps);
    let dropped = aidx.query_dropping_light_points(q, eps, eps / 2.0);
    let p2 = adversarial.len() - 1;
    println!(
        "  true P(target {p2} nearest)            = {:.4}",
        exact[p2]
    );
    println!(
        "  honest spiral search                  = {:.4} (error <= {eps})",
        honest[p2]
    );
    println!(
        "  after dropping particles with w < {:.3} = {:.4} (error {:.4} — guarantee broken!)",
        eps / 2.0,
        dropped[p2],
        (dropped[p2] - exact[p2]).abs()
    );
    assert!(
        (honest[p2] - exact[p2]).abs() <= eps,
        "honest truncation must keep the eps guarantee"
    );
    assert!(
        (dropped[p2] - exact[p2]).abs() > eps,
        "the adversarial instance must break the naive dropping heuristic \
         (otherwise this example demonstrates nothing)"
    );
    println!("\nall sensor_fusion assertions passed");
}
