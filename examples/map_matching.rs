//! Map matching with heterogeneous uncertainty regions and metrics.
//!
//! Showcases the paper's generality results: convex-polygon supports
//! (Theorem 2.6), the `L∞`/`L1` metric variants (§3 remark (ii)), guaranteed
//! nearest neighbors (`[SE08]`), and probabilistic k-NN membership. The
//! scenario: matching a noisy vehicle position against map cells whose
//! position uncertainty comes from different sources.
//!
//! ```sh
//! cargo run --release --example map_matching
//! ```

use unn::geom::{Aabb, Point};
use unn::nonzero::{ApolloniusDiagram, GuaranteedNnIndex, LinfNonzeroIndex};
use unn::{PnnIndex, Uncertain, UniformPolygon};

fn main() {
    // Heterogeneous uncertain landmarks: polygonal cells (map-matched road
    // segments), disks (GPS), a certain survey marker.
    let landmarks: Vec<(&str, Uncertain)> = vec![
        (
            "road-cell-A",
            Uncertain::Polygon(UniformPolygon::from_ccw_vertices(vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.5),
                Point::new(4.5, 2.5),
                Point::new(0.5, 2.0),
            ])),
        ),
        (
            "road-cell-B",
            Uncertain::Polygon(UniformPolygon::from_ccw_vertices(vec![
                Point::new(6.0, -1.0),
                Point::new(9.0, -0.5),
                Point::new(8.5, 1.5),
                Point::new(5.5, 1.0),
            ])),
        ),
        (
            "gps-fix",
            Uncertain::uniform_disk(Point::new(2.0, 6.0), 1.5),
        ),
        ("survey-marker", Uncertain::certain(Point::new(7.0, 5.0))),
        (
            "wifi-estimate",
            Uncertain::Polygon(UniformPolygon::regular(Point::new(-3.0, 3.0), 2.0, 6)),
        ),
    ];
    let names: Vec<&str> = landmarks.iter().map(|(n, _)| *n).collect();
    let index = PnnIndex::new(landmarks.into_iter().map(|(_, u)| u).collect());

    for q in [
        Point::new(3.0, 1.5),
        Point::new(5.0, 3.5),
        Point::new(-1.0, 4.0),
    ] {
        println!("vehicle at {q:?}:");
        let nz = index.nn_nonzero(q);
        assert!(!nz.is_empty(), "no NN candidate at {q:?}");
        println!(
            "  candidates: {:?}",
            nz.iter().map(|&i| names[i]).collect::<Vec<_>>()
        );
        match index.guaranteed_nn(q) {
            Some(g) => {
                // A guaranteed NN is certain: it must be the only candidate.
                assert_eq!(nz, vec![g], "guaranteed NN must be the sole candidate");
                println!("  guaranteed nearest: {}", names[g])
            }
            None => {
                let (pi, _) = index.quantify(q);
                let mut ranked: Vec<(usize, f64)> = pi
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, p)| p > 0.001)
                    .collect();
                ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
                for (i, p) in ranked {
                    println!("  {}  P(nearest) ~ {p:.3}", names[i]);
                }
            }
        }
        // Top-2 membership: which landmarks are in the 2 nearest with high
        // probability?
        let (memb, _) = index.knn_membership(q, 2);
        assert!(memb.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
        // Expected number of members in the top-2 is exactly 2.
        assert!(
            (memb.iter().sum::<f64>() - 2.0).abs() < 0.1,
            "k-NN membership probabilities must sum to k, got {}",
            memb.iter().sum::<f64>()
        );
        let likely: Vec<&str> = memb
            .iter()
            .enumerate()
            .filter(|&(_, p)| *p > 0.8)
            .map(|(i, _)| names[i])
            .collect();
        println!("  almost surely among the 2 nearest: {likely:?}\n");
    }

    // L-infinity variant: supports as bounding boxes, Chebyshev distance —
    // the right metric for grid/raster maps (remark (ii) of §3).
    use unn::distr::UncertainPoint;
    let rects: Vec<Aabb> = index.points().iter().map(|p| p.support_bbox()).collect();
    let linf = LinfNonzeroIndex::new(&rects);
    let q = Point::new(3.0, 1.5);
    let linf_candidates = linf.query(q);
    assert!(!linf_candidates.is_empty());
    assert_eq!(
        linf_candidates,
        linf.query_naive(q),
        "kd filtering lost a candidate"
    );
    println!(
        "L-infinity candidates at {q:?}: {:?}",
        linf_candidates
            .iter()
            .map(|&i| names[i])
            .collect::<Vec<_>>()
    );

    // The additively weighted Voronoi diagram of the disk hulls: the 'M'
    // subdivision the paper's stage-1 queries walk.
    let disks: Vec<unn::geom::Disk> = index
        .points()
        .iter()
        .map(|p| {
            let bb = p.support_bbox();
            unn::geom::Disk::new(bb.center(), 0.5 * bb.width().hypot(bb.height()))
        })
        .collect();
    let ap = ApolloniusDiagram::build(&disks);
    println!(
        "\nApollonius diagram M over bounding disks: {} envelope arcs, {} empty cells",
        ap.total_arcs(),
        ap.empty_cells()
    );
    assert!(
        ap.total_arcs() > 0,
        "nondegenerate disks must produce envelope arcs"
    );
    let g = GuaranteedNnIndex::new(&disks);
    let guaranteed_exists = (0..200).any(|i| {
        let t = i as f64 * 0.1;
        g.guaranteed_nn(Point::new(10.0 * t.cos(), 10.0 * t.sin()))
            .is_some()
    });
    println!("guaranteed regions exist: {guaranteed_exists}");
    assert!(
        guaranteed_exists,
        "far from the cluster some disk must dominate outright"
    );
    println!("\nall map_matching assertions passed");
}
