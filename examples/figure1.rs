//! Reproduces the paper's Figure 1: the pdf of the distance between a query
//! point and a uniformly distributed uncertain point.
//!
//! Setup (verbatim from the paper): `P_i` uniform on the disk of radius
//! `R = 5` centered at the origin, `q = (6, 8)`. The distance pdf `g_{q,i}`
//! is supported on `[5, 15]` and the closed form is compared against a
//! sampled histogram.
//!
//! ```sh
//! cargo run --release --example figure1
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use unn::distr::{UncertainPoint, UniformDisk};
use unn::geom::Point;

fn main() {
    let p = UniformDisk::from_center(Point::new(0.0, 0.0), 5.0);
    let q = Point::new(6.0, 8.0);
    println!("Figure 1 reproduction: disk R = 5 at origin, q = (6, 8)");
    println!("distance support: [{}, {}]\n", p.min_dist(q), p.max_dist(q));

    // Sampled histogram for comparison.
    let mut rng = SmallRng::seed_from_u64(1);
    let samples = 2_000_000usize;
    let bins = 40;
    let (lo, hi) = (5.0, 15.0);
    let mut hist = vec![0u32; bins];
    for _ in 0..samples {
        let d = p.sample(&mut rng).dist(q);
        let b = (((d - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1);
        hist[b] += 1;
    }

    println!(
        "{:>6}  {:>10}  {:>10}  plot (analytic)",
        "r", "g(r)", "sampled"
    );
    let mut max_pdf = 0.0f64;
    for b in 0..bins {
        let r = lo + (hi - lo) * (b as f64 + 0.5) / bins as f64;
        max_pdf = max_pdf.max(p.distance_pdf(q, r));
    }
    for (b, &count) in hist.iter().enumerate() {
        let r = lo + (hi - lo) * (b as f64 + 0.5) / bins as f64;
        let analytic = p.distance_pdf(q, r);
        let sampled = count as f64 / samples as f64 / ((hi - lo) / bins as f64);
        let bar = "#".repeat((analytic / max_pdf * 50.0).round() as usize);
        println!("{r:>6.2}  {analytic:>10.5}  {sampled:>10.5}  {bar}");
    }

    // The pdf integrates to 1 and the cdf hits the right endpoints.
    let total: f64 = (0..10_000)
        .map(|i| {
            let r = lo + (hi - lo) * (i as f64 + 0.5) / 10_000.0;
            p.distance_pdf(q, r) * (hi - lo) / 10_000.0
        })
        .sum();
    println!("\nintegral of g over [5, 15] = {total:.6} (should be 1)");
    println!(
        "G(5) = {}, G(15) = {}",
        p.distance_cdf(q, 5.0),
        p.distance_cdf(q, 15.0)
    );
}
