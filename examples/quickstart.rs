//! Quickstart: build an index over uncertain points and run every query type.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use unn::geom::Point;
use unn::{PnnIndex, Uncertain};

fn main() {
    // Five objects whose positions are uncertain: three GPS fixes with
    // disk-shaped error, one particle cloud, one exact landmark.
    let points = vec![
        Uncertain::uniform_disk(Point::new(0.0, 0.0), 1.5),
        Uncertain::uniform_disk(Point::new(6.0, 2.0), 2.0),
        Uncertain::uniform_disk(Point::new(3.0, -4.0), 1.0),
        Uncertain::uniform_disk(Point::new(-5.0, 3.0), 2.5),
        Uncertain::uniform_disk(Point::new(2.0, 6.0), 0.5),
    ];
    let index = PnnIndex::new(points);

    let q = Point::new(2.0, 0.5);
    println!("query point q = {q:?}\n");

    // 1. Which objects have nonzero probability of being q's NN?
    let candidates = index.nn_nonzero(q);
    println!("NN!=0(q) = {candidates:?}  (everything else has probability exactly 0)");
    assert!(
        !candidates.is_empty(),
        "a nonempty index always has NN candidates"
    );
    assert_eq!(
        candidates,
        vec![0, 1],
        "only the two disks whose supports can reach q before disk 0's far edge qualify"
    );

    // 2. With what probability is each the nearest neighbor?
    let (probs, method) = index.quantify(q);
    assert!(
        (probs.iter().sum::<f64>() - 1.0).abs() < 1e-9,
        "probabilities must form a distribution"
    );
    println!("\nquantification probabilities ({method:?}):");
    for (i, p) in probs.iter().enumerate() {
        if *p > 0.0 {
            println!("  P_{i}: {p:.4}");
        }
    }

    // 3. The single most probable NN, and the expected-distance NN
    //    (the "part I" ranking criterion) for comparison.
    let (mp, mp_prob) = index.most_probable_nn(q).expect("nonempty");
    let (ed, ed_dist) = index.expected_nn(q).expect("nonempty");
    println!("\nmost probable NN:      P_{mp} (pi = {mp_prob:.4})");
    println!("expected-distance NN:  P_{ed} (E[d] = {ed_dist:.4})");
    assert!(
        candidates.contains(&mp),
        "the most probable NN must have nonzero probability"
    );
    assert!(mp_prob > 0.0 && mp_prob <= 1.0);
    assert!(ed_dist.is_finite() && ed_dist >= 0.0);

    // 4. Exact answer for reference.
    let (exact, method) = index.quantify_exact(q);
    println!("\nreference ({method:?}):");
    for (i, p) in exact.iter().enumerate() {
        if *p > 1e-4 {
            println!("  P_{i}: {p:.4}");
        }
    }
    assert!((exact.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    let exact_argmax = exact
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("nonempty");
    assert_eq!(
        mp, exact_argmax,
        "the estimated most probable NN must match the exact reference"
    );
    println!("\nall quickstart assertions passed");
}
