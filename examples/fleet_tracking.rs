//! Fleet tracking: moving-object databases with stale GPS fixes.
//!
//! The classic motivation for uncertain NN queries (`[CKP04]`): a dispatch
//! center knows each vehicle's last report and a maximum speed, so the
//! current position is uncertain within a disk whose radius grows with the
//! report's age. "Which vehicle is nearest to this incident?" becomes a
//! probabilistic NN query.
//!
//! Fleets churn: fixes refresh, uncertainty disks grow between reports,
//! vehicles go on and off shift. This example drives the **dynamic** index
//! ([`DynamicPnnIndex`]) through simulated ticks — every tick re-inserts
//! aged vehicles under their stable ids and answers incident queries from
//! a frozen snapshot — and cross-checks the final state against a static
//! [`PnnIndex`] built from scratch.
//!
//! ```sh
//! cargo run --release --example fleet_tracking
//! ```

use unn::dynamic::{DynamicPnnConfig, DynamicPnnIndex, PointId};
use unn::geom::Point;
use unn::{PnnConfig, PnnIndex, Uncertain};

struct Vehicle {
    name: &'static str,
    last_fix: Point,
    age_s: f64,
    max_speed: f64, // units per second
}

impl Vehicle {
    fn disk(&self) -> Uncertain {
        Uncertain::uniform_disk(self.last_fix, (self.age_s * self.max_speed).max(0.1))
    }
}

fn main() {
    let mut fleet = [
        Vehicle {
            name: "unit-07",
            last_fix: Point::new(1.2, 3.4),
            age_s: 20.0,
            max_speed: 0.05,
        },
        Vehicle {
            name: "unit-12",
            last_fix: Point::new(-4.0, 1.0),
            age_s: 90.0,
            max_speed: 0.04,
        },
        Vehicle {
            name: "unit-19",
            last_fix: Point::new(3.5, -2.5),
            age_s: 45.0,
            max_speed: 0.06,
        },
        Vehicle {
            name: "unit-23",
            last_fix: Point::new(6.0, 4.0),
            age_s: 10.0,
            max_speed: 0.05,
        },
        Vehicle {
            name: "unit-31",
            last_fix: Point::new(-1.5, -5.0),
            age_s: 120.0,
            max_speed: 0.03,
        },
        Vehicle {
            name: "unit-44",
            last_fix: Point::new(0.5, 7.0),
            age_s: 60.0,
            max_speed: 0.05,
        },
    ];

    let config = DynamicPnnConfig {
        base: PnnConfig {
            epsilon: 0.02,
            ..PnnConfig::default()
        },
        mc_rounds: 512,
        ..DynamicPnnConfig::default()
    };
    let mut index =
        DynamicPnnIndex::with_config(config).unwrap_or_else(|e| panic!("config rejected: {e}"));

    println!("tick 0 — fleet comes online (radius = age x max speed):");
    let ids: Vec<PointId> = fleet
        .iter()
        .map(|v| {
            let id = index.insert(v.disk());
            println!(
                "  {} -> id {}, radius {:.2}",
                v.name,
                id,
                v.age_s * v.max_speed
            );
            id
        })
        .collect();
    assert_eq!(index.len(), fleet.len());

    let incidents = [
        Point::new(1.0, 0.0),
        Point::new(-3.0, -2.0),
        Point::new(5.0, 5.0),
    ];

    // Freeze a view of tick 0 before any churn: dispatch decisions made on
    // it stay consistent no matter what the updater thread does next.
    let tick0 = index.snapshot();

    // --- Simulated ticks: ages grow; every other tick one unit refreshes
    // its fix (small disk again) while the rest just get staler.
    for tick in 1..=4usize {
        let dt = 15.0;
        for v in fleet.iter_mut() {
            v.age_s += dt;
        }
        let refreshing = (tick * 2) % fleet.len();
        fleet[refreshing].age_s = 5.0;
        fleet[refreshing].last_fix = Point::new(
            fleet[refreshing].last_fix.x + 0.4,
            fleet[refreshing].last_fix.y - 0.3,
        );
        // Re-insert every vehicle under its stable id with the new disk.
        for (v, &id) in fleet.iter().zip(&ids) {
            assert!(index.remove(id), "{} (id {id}) must be live", v.name);
            index
                .insert_with_id(id, v.disk())
                .unwrap_or_else(|e| panic!("re-insert {}: {e}", v.name));
        }
        assert_eq!(index.len(), fleet.len(), "churn must preserve the roster");

        let snap = index.snapshot();
        println!(
            "\ntick {tick} — {} refreshed its fix (epoch {}):",
            fleet[refreshing].name,
            snap.epoch()
        );
        for q in incidents {
            let candidates = snap.nn_nonzero(q);
            assert!(!candidates.is_empty(), "no candidate vehicle at {q:?}");
            let (probs, _) = snap.quantify(q);
            // All probability mass must sit on the nonzero candidates.
            let live = snap.live_ids();
            let on_candidates: f64 = candidates
                .iter()
                .map(|id| {
                    let rank = live
                        .binary_search(id)
                        .unwrap_or_else(|_| panic!("candidate id {id} missing from live set"));
                    probs[rank]
                })
                .sum();
            assert!(
                (on_candidates - 1.0).abs() < 1e-9,
                "candidate probabilities sum to {on_candidates} at {q:?}"
            );
            let mut ranked: Vec<(PointId, f64)> = candidates
                .iter()
                .map(|&id| {
                    let rank = live.binary_search(&id).unwrap_or(0);
                    (id, probs[rank])
                })
                .collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            print!("  incident {q:?}:");
            for (id, p) in ranked {
                let v = &fleet[ids.iter().position(|&i| i == id).unwrap_or(0)];
                print!("  {} ~{:.3}", v.name, p);
            }
            println!();
        }
    }

    // unit-31 goes off shift; a relief unit comes online.
    let off = ids[4];
    assert!(index.remove(off));
    assert!(!index.contains(off));
    let relief = index.insert(Uncertain::uniform_disk(Point::new(-2.0, -4.0), 0.3));
    println!(
        "\n{} off shift; relief unit id {relief} online",
        fleet[4].name
    );
    assert_eq!(index.len(), fleet.len());

    let stats = index.stats();
    println!(
        "lifecycle: {} blocks ({} slots max), {} merges, {} compactions, {} tombstones, epoch {}",
        stats.blocks,
        stats.largest_block,
        stats.merges,
        stats.compactions,
        stats.tombstones,
        stats.epoch
    );
    assert!(
        stats.merges > 0,
        "five ticks of churn must have cascaded at least one merge"
    );

    // The tick-0 snapshot is still answering from the original roster.
    let then = tick0.nn_nonzero(incidents[0]);
    assert!(
        then.iter().all(|id| ids.contains(id)),
        "the frozen tick-0 view must only know the original units"
    );
    assert_eq!(tick0.len(), fleet.len());

    // --- Cross-check: the final dynamic state must agree bit-for-bit with
    // a static index built from scratch on the surviving live set.
    let snap = index.snapshot();
    let live = snap.live_points();
    let static_index = PnnIndex::build(
        live.iter().map(|(_, p)| p.clone()).collect(),
        PnnConfig {
            epsilon: 0.02,
            ..PnnConfig::default()
        },
    );
    for q in incidents {
        let dynamic_ids = snap.nn_nonzero(q);
        let static_ids: Vec<PointId> = static_index
            .nn_nonzero(q)
            .into_iter()
            .map(|i| live[i].0)
            .collect();
        assert_eq!(
            dynamic_ids, static_ids,
            "dynamic and rebuilt static NN!=0 diverged at {q:?}"
        );
    }
    println!("\nfinal state agrees with a from-scratch static rebuild");
    println!("all fleet_tracking assertions passed");
}
