//! Fleet tracking: moving-object databases with stale GPS fixes.
//!
//! The classic motivation for uncertain NN queries (`[CKP04]`): a dispatch
//! center knows each vehicle's last report and a maximum speed, so the
//! current position is uncertain within a disk whose radius grows with the
//! report's age. "Which vehicle is nearest to this incident?" becomes a
//! probabilistic NN query.
//!
//! ```sh
//! cargo run --release --example fleet_tracking
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::geom::{Aabb, Point};
use unn::nonzero::NonzeroSubdivision;
use unn::{PnnConfig, PnnIndex, Uncertain};

struct Vehicle {
    id: &'static str,
    last_fix: Point,
    age_s: f64,
    max_speed: f64, // units per second
}

fn main() {
    let fleet = [
        Vehicle {
            id: "unit-07",
            last_fix: Point::new(1.2, 3.4),
            age_s: 20.0,
            max_speed: 0.05,
        },
        Vehicle {
            id: "unit-12",
            last_fix: Point::new(-4.0, 1.0),
            age_s: 90.0,
            max_speed: 0.04,
        },
        Vehicle {
            id: "unit-19",
            last_fix: Point::new(3.5, -2.5),
            age_s: 45.0,
            max_speed: 0.06,
        },
        Vehicle {
            id: "unit-23",
            last_fix: Point::new(6.0, 4.0),
            age_s: 10.0,
            max_speed: 0.05,
        },
        Vehicle {
            id: "unit-31",
            last_fix: Point::new(-1.5, -5.0),
            age_s: 120.0,
            max_speed: 0.03,
        },
        Vehicle {
            id: "unit-44",
            last_fix: Point::new(0.5, 7.0),
            age_s: 60.0,
            max_speed: 0.05,
        },
    ];
    let points: Vec<Uncertain> = fleet
        .iter()
        .map(|v| Uncertain::uniform_disk(v.last_fix, (v.age_s * v.max_speed).max(0.1)))
        .collect();
    let disks: Vec<unn::geom::Disk> = points.iter().map(|p| p.as_disk().unwrap()).collect();

    println!("fleet with position uncertainty (radius = age x max speed):");
    for (v, d) in fleet.iter().zip(&disks) {
        println!(
            "  {}: last fix {:?}, uncertainty radius {:.2}",
            v.id, v.last_fix, d.radius
        );
    }

    let index = PnnIndex::build(
        points,
        PnnConfig {
            epsilon: 0.02,
            ..PnnConfig::default()
        },
    );

    // Incidents come in; who could be closest, and with what probability?
    let incidents = [
        Point::new(1.0, 0.0),
        Point::new(-3.0, -2.0),
        Point::new(5.0, 5.0),
    ];
    for q in incidents {
        println!("\nincident at {q:?}:");
        let candidates = index.nn_nonzero(q);
        assert!(!candidates.is_empty(), "no candidate vehicle at {q:?}");
        let (probs, _) = index.quantify(q);
        // All probability mass must sit on the nonzero candidates.
        let on_candidates: f64 = candidates.iter().map(|&i| probs[i]).sum();
        assert!(
            (on_candidates - 1.0).abs() < 1e-9,
            "candidate probabilities sum to {on_candidates} at {q:?}"
        );
        let mut ranked: Vec<(usize, f64)> = candidates.iter().map(|&i| (i, probs[i])).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (i, p) in ranked {
            println!("  {}  P(nearest) ~ {:.3}", fleet[i].id, p);
        }
    }

    // Precompute the nonzero Voronoi diagram of the whole operations area:
    // for any incident location we can read off the full candidate set in
    // O(log) time (Theorem 2.11).
    let area = Aabb::new(Point::new(-15.0, -15.0), Point::new(15.0, 15.0));
    let sub = NonzeroSubdivision::build(&disks, area, 1e-3);
    let stats = sub.stats();
    println!(
        "\nnonzero Voronoi diagram of the ops area: {} vertices, {} edges, {} faces",
        stats.vertices, stats.edges, stats.faces
    );
    assert!(stats.faces > 0, "the subdivision must cover the ops area");
    println!(
        "label storage: {} persistent deltas vs {} explicit elements",
        stats.persistent_deltas, stats.explicit_label_elems
    );

    // Spot-check the subdivision against the index on random incidents.
    let mut rng = SmallRng::seed_from_u64(7);
    let mut agree = 0;
    let trials = 1000;
    for _ in 0..trials {
        let q = Point::new(rng.random_range(-14.0..14.0), rng.random_range(-14.0..14.0));
        if sub.query(q) == index.nn_nonzero(q) {
            agree += 1;
        }
    }
    println!("subdivision vs index agreement on {trials} random incidents: {agree}");
    // The subdivision snaps vertices at 1e-3, so incidents landing exactly on
    // a cell boundary may differ; away from boundaries it must agree.
    assert!(
        agree >= trials * 99 / 100,
        "subdivision disagreed with the index on {} of {trials} incidents",
        trials - agree
    );
    println!("all fleet_tracking assertions passed");
}
