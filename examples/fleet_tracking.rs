//! Fleet tracking: moving-object databases with stale GPS fixes.
//!
//! The classic motivation for uncertain NN queries (`[CKP04]`): a dispatch
//! center knows each vehicle's last report and a maximum speed, so the
//! current position is uncertain within a disk whose radius grows with the
//! report's age. "Which vehicle is nearest to this incident?" becomes a
//! probabilistic NN query.
//!
//! Fleets churn: fixes refresh, uncertainty disks grow between reports,
//! vehicles go on and off shift. This example drives the **dynamic** index
//! ([`DynamicPnnIndex`]) through simulated ticks — every tick re-inserts
//! aged vehicles under their stable ids and answers incident queries from
//! a frozen snapshot — and cross-checks the final state against a static
//! [`PnnIndex`] built from scratch.
//!
//! The finale routes the same roster through the sharded serving tier
//! (`unn::serve`) with one deliberately slow region: the dispatcher keeps
//! answering from the healthy region, flags the replies degraded, and the
//! certified `achieved_epsilon` still bounds the true error against an
//! exact sweep over the covered vehicles. Finally the same roster is served
//! over localhost TCP (`unn::net`), with every reply bit-identical to the
//! in-process dispatcher.
//!
//! ```sh
//! cargo run --release --example fleet_tracking
//! ```

use std::sync::{Arc, Mutex};
use std::time::Duration;

use unn::dynamic::{DynamicPnnConfig, DynamicPnnIndex, PointId};
use unn::geom::Point;
use unn::net::{tcp_connector, ClientConfig, NetClient, NetServer, ServerConfig};
use unn::observe::NullClock;
use unn::serve::{
    ChaosShard, DispatchConfig, Dispatcher, FaultKind, Outcome, Request, ServeConfig, ShardPolicy,
    ShardSet,
};
use unn::{PnnConfig, PnnIndex, Uncertain};

struct Vehicle {
    name: &'static str,
    last_fix: Point,
    age_s: f64,
    max_speed: f64, // units per second
}

impl Vehicle {
    fn disk(&self) -> Uncertain {
        Uncertain::uniform_disk(self.last_fix, (self.age_s * self.max_speed).max(0.1))
    }
}

fn main() {
    let mut fleet = [
        Vehicle {
            name: "unit-07",
            last_fix: Point::new(1.2, 3.4),
            age_s: 20.0,
            max_speed: 0.05,
        },
        Vehicle {
            name: "unit-12",
            last_fix: Point::new(-4.0, 1.0),
            age_s: 90.0,
            max_speed: 0.04,
        },
        Vehicle {
            name: "unit-19",
            last_fix: Point::new(3.5, -2.5),
            age_s: 45.0,
            max_speed: 0.06,
        },
        Vehicle {
            name: "unit-23",
            last_fix: Point::new(6.0, 4.0),
            age_s: 10.0,
            max_speed: 0.05,
        },
        Vehicle {
            name: "unit-31",
            last_fix: Point::new(-1.5, -5.0),
            age_s: 120.0,
            max_speed: 0.03,
        },
        Vehicle {
            name: "unit-44",
            last_fix: Point::new(0.5, 7.0),
            age_s: 60.0,
            max_speed: 0.05,
        },
    ];

    let config = DynamicPnnConfig {
        base: PnnConfig {
            epsilon: 0.02,
            ..PnnConfig::default()
        },
        mc_rounds: 512,
        ..DynamicPnnConfig::default()
    };
    let mut index =
        DynamicPnnIndex::with_config(config).unwrap_or_else(|e| panic!("config rejected: {e}"));

    println!("tick 0 — fleet comes online (radius = age x max speed):");
    let ids: Vec<PointId> = fleet
        .iter()
        .map(|v| {
            let id = index.insert(v.disk());
            println!(
                "  {} -> id {}, radius {:.2}",
                v.name,
                id,
                v.age_s * v.max_speed
            );
            id
        })
        .collect();
    assert_eq!(index.len(), fleet.len());

    let incidents = [
        Point::new(1.0, 0.0),
        Point::new(-3.0, -2.0),
        Point::new(5.0, 5.0),
    ];

    // Freeze a view of tick 0 before any churn: dispatch decisions made on
    // it stay consistent no matter what the updater thread does next.
    let tick0 = index.snapshot();

    // --- Simulated ticks: ages grow; every other tick one unit refreshes
    // its fix (small disk again) while the rest just get staler.
    for tick in 1..=4usize {
        let dt = 15.0;
        for v in fleet.iter_mut() {
            v.age_s += dt;
        }
        let refreshing = (tick * 2) % fleet.len();
        fleet[refreshing].age_s = 5.0;
        fleet[refreshing].last_fix = Point::new(
            fleet[refreshing].last_fix.x + 0.4,
            fleet[refreshing].last_fix.y - 0.3,
        );
        // Re-insert every vehicle under its stable id with the new disk.
        for (v, &id) in fleet.iter().zip(&ids) {
            assert!(index.remove(id), "{} (id {id}) must be live", v.name);
            index
                .insert_with_id(id, v.disk())
                .unwrap_or_else(|e| panic!("re-insert {}: {e}", v.name));
        }
        assert_eq!(index.len(), fleet.len(), "churn must preserve the roster");

        let snap = index.snapshot();
        println!(
            "\ntick {tick} — {} refreshed its fix (epoch {}):",
            fleet[refreshing].name,
            snap.epoch()
        );
        for q in incidents {
            let candidates = snap.nn_nonzero(q);
            assert!(!candidates.is_empty(), "no candidate vehicle at {q:?}");
            let (probs, _) = snap.quantify(q);
            // All probability mass must sit on the nonzero candidates.
            let live = snap.live_ids();
            let on_candidates: f64 = candidates
                .iter()
                .map(|id| {
                    let rank = live
                        .binary_search(id)
                        .unwrap_or_else(|_| panic!("candidate id {id} missing from live set"));
                    probs[rank]
                })
                .sum();
            assert!(
                (on_candidates - 1.0).abs() < 1e-9,
                "candidate probabilities sum to {on_candidates} at {q:?}"
            );
            let mut ranked: Vec<(PointId, f64)> = candidates
                .iter()
                .map(|&id| {
                    let rank = live.binary_search(&id).unwrap_or(0);
                    (id, probs[rank])
                })
                .collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            print!("  incident {q:?}:");
            for (id, p) in ranked {
                let v = &fleet[ids.iter().position(|&i| i == id).unwrap_or(0)];
                print!("  {} ~{:.3}", v.name, p);
            }
            println!();
        }
    }

    // unit-31 goes off shift; a relief unit comes online.
    let off = ids[4];
    assert!(index.remove(off));
    assert!(!index.contains(off));
    let relief = index.insert(Uncertain::uniform_disk(Point::new(-2.0, -4.0), 0.3));
    println!(
        "\n{} off shift; relief unit id {relief} online",
        fleet[4].name
    );
    assert_eq!(index.len(), fleet.len());

    let stats = index.stats();
    println!(
        "lifecycle: {} blocks ({} slots max), {} merges, {} compactions, {} tombstones, epoch {}",
        stats.blocks,
        stats.largest_block,
        stats.merges,
        stats.compactions,
        stats.tombstones,
        stats.epoch
    );
    assert!(
        stats.merges > 0,
        "five ticks of churn must have cascaded at least one merge"
    );

    // The tick-0 snapshot is still answering from the original roster.
    let then = tick0.nn_nonzero(incidents[0]);
    assert!(
        then.iter().all(|id| ids.contains(id)),
        "the frozen tick-0 view must only know the original units"
    );
    assert_eq!(tick0.len(), fleet.len());

    // --- Cross-check: the final dynamic state must agree bit-for-bit with
    // a static index built from scratch on the surviving live set.
    let snap = index.snapshot();
    let live = snap.live_points();
    let static_index = PnnIndex::build(
        live.iter().map(|(_, p)| p.clone()).collect(),
        PnnConfig {
            epsilon: 0.02,
            ..PnnConfig::default()
        },
    );
    for q in incidents {
        let dynamic_ids = snap.nn_nonzero(q);
        let static_ids: Vec<PointId> = static_index
            .nn_nonzero(q)
            .into_iter()
            .map(|i| live[i].0)
            .collect();
        assert_eq!(
            dynamic_ids, static_ids,
            "dynamic and rebuilt static NN!=0 diverged at {q:?}"
        );
    }
    println!("\nfinal state agrees with a from-scratch static rebuild");

    // --- Dispatch center goes regional: the same roster behind the sharded
    // serving tier, with one deliberately slow region. The dispatcher must
    // keep answering — flagged degraded, with a certified error bound —
    // rather than erroring or blocking on the sick shard.
    let roster = live; // (dynamic id, disk) pairs from the final snapshot
    let mut regions = ShardSet::new(
        3,
        ShardPolicy::Hash,
        ServeConfig {
            mc_rounds: 512,
            ..ServeConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("serve config rejected: {e}"));
    // Serving ids are assigned in insertion order: serve id k == roster[k].
    for (_, disk) in &roster {
        regions.insert(disk.clone());
    }
    let serving = regions.snapshot();

    let requests: Vec<Request> = incidents.iter().map(|&q| Request::Quantify(q)).collect();

    // Healthy tier: exact answers over the full roster.
    let mut healthy =
        Dispatcher::for_snapshot(&serving, DispatchConfig::default(), Arc::new(NullClock))
            .unwrap_or_else(|e| panic!("dispatch config rejected: {e}"));
    for reply in healthy.serve(&requests) {
        assert!(!reply.degraded, "healthy serving must not degrade");
        assert_eq!(reply.covered, reply.total_live, "full coverage");
        assert!(matches!(reply.outcome, Outcome::Exact { .. }));
    }

    // Region 0's backend reports 5ms calls against a 1ms timeout: every
    // attempt times out, so replies cover only the healthy region.
    let mut limping = Dispatcher::for_snapshot(
        &serving,
        DispatchConfig {
            call_timeout_nanos: 1_000_000,
            ..DispatchConfig::default()
        },
        Arc::new(NullClock),
    )
    .unwrap_or_else(|e| panic!("dispatch config rejected: {e}"));
    limping.wrap_shard(0, |inner| {
        Box::new(ChaosShard::new(inner, FaultKind::SlowBy(5_000_000)))
    });

    println!("\nregion 0 is slow (5ms against a 1ms deadline):");
    for (reply, &q) in limping.serve(&requests).iter().zip(&incidents) {
        assert!(reply.degraded, "lost coverage must be flagged");
        assert!(reply.partial(), "region 0 must be missing");
        assert!(reply.failed_shards.contains(&0));
        let Outcome::Adaptive {
            pi,
            achieved_epsilon,
            ..
        } = &reply.outcome
        else {
            panic!(
                "expected a degraded adaptive answer, got {:?}",
                reply.outcome
            )
        };
        // Honesty check: the certified bound must hold against an exact
        // sweep over exactly the vehicles the reply claims to cover.
        let covered_disks: Vec<Uncertain> = reply
            .layout
            .iter()
            .map(|&sid| roster[sid as usize].1.clone())
            .collect();
        let exact = PnnIndex::new(covered_disks).quantify_exact(q).0;
        let err = pi
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            err <= *achieved_epsilon,
            "degraded answer error {err} exceeds certified {achieved_epsilon} at {q:?}"
        );
        println!(
            "  incident {q:?}: {}/{} vehicles covered, error {err:.4} <= certified {:.4}",
            reply.covered, reply.total_live, achieved_epsilon
        );
    }
    let m = limping.metrics();
    assert!(m.timeouts > 0, "the slow region must have timed out");
    assert_eq!(m.degraded, incidents.len() as u64);
    println!(
        "serving under a slow region: {} timeouts, {} retries, every answer degraded-but-honest",
        m.timeouts, m.retries
    );

    // --- The dispatch center moves off-box: the same roster served over
    // localhost TCP. The wire protocol must be invisible in the answers —
    // every reply bit-identical to an in-process dispatcher call.
    let in_process =
        Dispatcher::for_snapshot(&serving, DispatchConfig::default(), Arc::new(NullClock))
            .unwrap_or_else(|e| panic!("dispatch config rejected: {e}"))
            .serve(&requests);
    let remote = Dispatcher::for_snapshot(&serving, DispatchConfig::default(), Arc::new(NullClock))
        .unwrap_or_else(|e| panic!("dispatch config rejected: {e}"));
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::new(Mutex::new(remote)),
        ServerConfig::default(),
    )
    .unwrap_or_else(|e| panic!("bind: {e}"));
    let mut client = NetClient::new(
        tcp_connector(server.local_addr(), Duration::from_secs(10)),
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    let ack = client
        .connect()
        .unwrap_or_else(|e| panic!("handshake: {e}"));
    println!(
        "\ndispatch center on TCP {} (wire v{}, {} vehicles live):",
        server.local_addr(),
        ack.version,
        ack.total_live
    );
    let over_wire = client.serve(&requests).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        over_wire, in_process,
        "TCP replies must be bit-identical to in-process dispatch"
    );
    for (reply, &q) in over_wire.iter().zip(&incidents) {
        let tier = match &reply.outcome {
            Outcome::Exact { .. } => "exact",
            Outcome::Adaptive { .. } => "adaptive",
            Outcome::Capped { .. } => "capped",
            Outcome::Nonzero { .. } => "nonzero",
            Outcome::Shed { .. } => "shed",
        };
        println!("  incident {q:?}: {tier} answer over the wire == in-process");
    }
    let stats = client.stats();
    println!(
        "wire totals: {} frames out / {} in, {} bytes out / {} in, 0 retries",
        stats.frames_out, stats.frames_in, stats.bytes_out, stats.bytes_in
    );
    assert_eq!(stats.retried_attempts, 0);
    server.shutdown();

    println!("all fleet_tracking assertions passed");
}
